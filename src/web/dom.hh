/**
 * @file
 * Document Object Model tree.
 *
 * A slimmed-down DOM sufficient for PES: nodes carry geometry, display
 * state, a role (the semantic kind the Accessibility Tree would expose),
 * registered event listeners, and handler metadata (what the callback does
 * and how much work it is). Visibility — displayed and inside the viewport
 * — is what the DOM analyzer uses to compute the Likely-Next-Event-Set.
 */

#ifndef PES_WEB_DOM_HH
#define PES_WEB_DOM_HH

#include <atomic>
#include <string>
#include <vector>

#include "hw/dvfs_model.hh"
#include "util/logging.hh"
#include "web/event_types.hh"
#include "web/geometry.hh"

namespace pes {

/** Index of a node within its DomTree; kInvalidNode when absent. */
using NodeId = int;

/** Sentinel for "no node". */
constexpr NodeId kInvalidNode = -1;

/** Semantic role of a DOM node (what the Accessibility Tree reports). */
enum class NodeRole
{
    Container = 0,  ///< layout-only <div>/<section>
    Text,           ///< static text
    Image,          ///< image content
    Link,           ///< navigation anchor
    Button,         ///< generic interactive button
    MenuToggle,     ///< button that expands/collapses a menu
    MenuItem,       ///< entry inside a menu
    FormField,      ///< input element
    SubmitButton,   ///< form submit control
};

/** Human-readable role name. */
const char *nodeRoleName(NodeRole role);

/** What a node's event callback does to application state. */
enum class EffectKind
{
    None = 0,       ///< pure visual update
    ToggleDisplay,  ///< show/hide the effect target (collapsible menu)
    Navigate,       ///< load a different page
    ScrollBy,       ///< move the viewport vertically
};

/**
 * The application-visible effect of one event handler.
 */
struct HandlerEffect
{
    EffectKind kind = EffectKind::None;
    /** Node shown/hidden by ToggleDisplay. */
    NodeId target = kInvalidNode;
    /** Destination page index for Navigate. */
    int pageId = -1;
    /** Scroll delta in pixels for ScrollBy (positive = down). */
    double scrollDelta = 0.0;
};

/**
 * One registered event listener with its callback cost model.
 */
struct HandlerSpec
{
    DomEventType type = DomEventType::Click;
    HandlerEffect effect;
    /**
     * Identity of the callback *function*: many nodes share one handler
     * (every article card calls the same listener), and workload
     * estimation keys on the callback, not the element. Negative = the
     * handler is unique to its node.
     */
    int handlerClassId = -1;
    /** Median callback workload (sampled per instance with noise). */
    Workload medianWork;
    /** Log-space sigma for per-instance workload noise. */
    double workSigma = 0.1;
    /** Number of DOM nodes the callback dirties (drives render cost). */
    int dirtyNodes = 4;
    /**
     * Multiplier on the render-pipeline cost of this handler's frames
     * (e.g. scrolls are composite-dominated and cheap; loads re-render
     * the whole page).
     */
    double renderCostScale = 1.0;
    /** Whether the callback issues a network request (commit-gated). */
    bool issuesNetworkRequest = false;
};

/**
 * One DOM node.
 */
struct DomNode
{
    NodeId id = kInvalidNode;
    NodeId parent = kInvalidNode;
    std::vector<NodeId> children;
    NodeRole role = NodeRole::Container;
    Rect rect;
    /** CSS display: none when false (menus start hidden). */
    bool displayed = true;
    std::vector<HandlerSpec> handlers;

    /** Listener for @p type, or nullptr when none is registered. */
    const HandlerSpec *handlerFor(DomEventType type) const;

    /** True when any listener is registered. */
    bool hasListeners() const { return !handlers.empty(); }

    /** True for roles a user can tap (per the Accessibility Tree). */
    bool isClickable() const;

    /** True for navigation anchors. */
    bool isLink() const { return role == NodeRole::Link; }
};

/**
 * Arena-allocated DOM tree for one page.
 */
class DomTree
{
  public:
    DomTree();

    // The cached page height is an atomic (see pageHeight()), which is
    // neither copyable nor movable; the tree itself must stay both, so
    // spell the special members out, transferring the cached value.
    DomTree(const DomTree &other)
        : nodes_(other.nodes_),
          cachedPageHeight_(other.cachedPageHeight_.load(
              std::memory_order_relaxed))
    {
    }
    DomTree(DomTree &&other) noexcept
        : nodes_(std::move(other.nodes_)),
          cachedPageHeight_(other.cachedPageHeight_.load(
              std::memory_order_relaxed))
    {
    }
    DomTree &operator=(const DomTree &other)
    {
        nodes_ = other.nodes_;
        cachedPageHeight_.store(
            other.cachedPageHeight_.load(std::memory_order_relaxed),
            std::memory_order_relaxed);
        return *this;
    }
    DomTree &operator=(DomTree &&other) noexcept
    {
        nodes_ = std::move(other.nodes_);
        cachedPageHeight_.store(
            other.cachedPageHeight_.load(std::memory_order_relaxed),
            std::memory_order_relaxed);
        return *this;
    }

    /** The root node id (always 0, a displayed full-page container). */
    NodeId root() const { return 0; }

    /**
     * Create a node under @p parent. Panics when @p parent is invalid.
     */
    NodeId createNode(NodeId parent, NodeRole role, const Rect &rect);

    /** Mutable access to node @p id (invalidates cached page geometry). */
    DomNode &node(NodeId id)
    {
        panic_if(id < 0 || id >= static_cast<NodeId>(nodes_.size()),
                 "node: invalid id %d", id);
        cachedPageHeight_.store(-1.0, std::memory_order_relaxed);
        return nodes_[static_cast<size_t>(id)];
    }
    /** Immutable access to node @p id. */
    const DomNode &node(NodeId id) const
    {
        panic_if(id < 0 || id >= static_cast<NodeId>(nodes_.size()),
                 "node: invalid id %d", id);
        return nodes_[static_cast<size_t>(id)];
    }

    /** Number of nodes. */
    size_t size() const { return nodes_.size(); }

    /** Register a listener on @p id. */
    void addHandler(NodeId id, const HandlerSpec &spec);

    /** Set the CSS display state of @p id. */
    void setDisplayed(NodeId id, bool displayed);

    /**
     * True when @p id and all ancestors are displayed (style visibility
     * only, ignoring the viewport).
     */
    bool isDisplayed(NodeId id) const;

    /**
     * True when the node is displayed and its rectangle intersects the
     * viewport — the visibility test of the LNES analysis (Sec. 5.2).
     */
    bool isVisible(NodeId id, const Viewport &viewport) const;

    /** Ids of all nodes visible in @p viewport. */
    std::vector<NodeId> visibleNodes(const Viewport &viewport) const;

    /** Height of the page content (max bottom edge over displayed nodes). */
    double pageHeight() const;

    /** Resize the root to cover the page (call after building). */
    void fitRootToContent();

  private:
    std::vector<DomNode> nodes_;
    /**
     * Lazily computed pageHeight(), -1 when stale. Atomic because the
     * app's pristine page trees are shared read-only across worker
     * threads and the lazy fill may race; every racer stores the same
     * deterministic value, so relaxed ordering suffices.
     */
    mutable std::atomic<double> cachedPageHeight_{-1.0};
};

} // namespace pes

#endif // PES_WEB_DOM_HH
