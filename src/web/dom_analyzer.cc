#include "web/dom_analyzer.hh"

#include <algorithm>

#include "util/logging.hh"

namespace pes {

DomAnalyzer::DomAnalyzer(const WebAppSession &session)
    : session_(&session)
{
}

const DomTree &
DomAnalyzer::domOf(const DomOverlay &state) const
{
    // The committed session DOM only applies to the page the session is
    // on; a hypothetical navigation lands on a pristine page (navigation
    // re-parses the destination, see WebAppSession::applyEffect).
    if (state.pageId == session_->currentPage())
        return session_->dom();
    return session_->app().dom(state.pageId);
}

const SemanticTree &
DomAnalyzer::semanticsOf(const DomOverlay &state) const
{
    return session_->app().semantics(state.pageId);
}

Viewport
DomAnalyzer::viewportOf(const DomOverlay &state) const
{
    Viewport viewport = session_->app().viewportTemplate();
    viewport.scrollY = state.scrollY;
    return viewport;
}

std::vector<CandidateEvent>
DomAnalyzer::allPageEvents(const DomOverlay &state) const
{
    const DomTree &dom = domOf(state);
    std::vector<CandidateEvent> out;
    for (size_t i = 0; i < dom.size(); ++i) {
        const DomNode &node = dom.node(static_cast<NodeId>(i));
        for (const HandlerSpec &spec : node.handlers)
            out.push_back({spec.type, node.id});
    }
    return out;
}

Viewport
DomAnalyzer::viewportFor(const DomOverlay &state) const
{
    return viewportOf(state);
}

NodeRole
DomAnalyzer::nodeRole(const DomOverlay &state, NodeId node) const
{
    const DomTree &dom = domOf(state);
    if (node < 0 || node >= static_cast<NodeId>(dom.size()))
        return NodeRole::Container;
    return dom.node(node).role;
}

std::vector<CandidateEvent>
DomAnalyzer::likelyNextEvents(const DomOverlay &state) const
{
    const DomTree &dom = domOf(state);
    const Viewport viewport = viewportOf(state);
    const Rect view_rect = viewport.rect();

    std::vector<CandidateEvent> out;
    for (size_t i = 0; i < dom.size(); ++i) {
        const NodeId id = static_cast<NodeId>(i);
        const DomNode &node = dom.node(id);
        if (node.handlers.empty())
            continue;
        if (!state.displayedOf(dom, id))
            continue;
        if (!node.rect.intersects(view_rect))
            continue;
        for (const HandlerSpec &spec : node.handlers)
            out.push_back({spec.type, id});
    }
    std::sort(out.begin(), out.end(),
              [](const CandidateEvent &a, const CandidateEvent &b) {
                  if (a.node != b.node)
                      return a.node < b.node;
                  return static_cast<int>(a.type) < static_cast<int>(b.type);
              });
    return out;
}

ViewportStats
DomAnalyzer::viewportStats(const DomOverlay &state) const
{
    const DomTree &dom = domOf(state);
    const Viewport viewport = viewportOf(state);
    const Rect view_rect = viewport.rect();
    const double view_area = view_rect.area();

    ViewportStats stats;
    double clickable_area = 0.0;
    double link_area = 0.0;
    for (size_t i = 0; i < dom.size(); ++i) {
        const NodeId id = static_cast<NodeId>(i);
        const DomNode &node = dom.node(id);
        if (!state.displayedOf(dom, id))
            continue;
        const double overlap = node.rect.intersectionArea(view_rect);
        if (overlap <= 0.0)
            continue;
        ++stats.visibleNodes;
        if (node.isClickable())
            clickable_area += overlap;
        // "Links" are navigation affordances: anchor elements and any
        // clickable element whose handler triggers a page load (e.g. nav
        // menu items). The document-level load handler does not count —
        // it is not a visible affordance.
        if (node.isLink() ||
            (node.isClickable() && node.handlerFor(DomEventType::Load)))
            link_area += overlap;
    }
    stats.clickableFrac = std::min(1.0, clickable_area / view_area);
    stats.visibleLinkFrac = std::min(1.0, link_area / view_area);
    stats.scrollable =
        dom.pageHeight() > viewport.height + 1.0;
    return stats;
}

DomAnalysis
DomAnalyzer::analyze(const DomOverlay &state) const
{
    const DomTree &dom = domOf(state);
    const Viewport viewport = viewportOf(state);
    const Rect view_rect = viewport.rect();
    const double view_area = view_rect.area();

    DomAnalysis out;
    out.viewport = viewport;
    double clickable_area = 0.0;
    double link_area = 0.0;
    for (size_t i = 0; i < dom.size(); ++i) {
        const NodeId id = static_cast<NodeId>(i);
        const DomNode &node = dom.node(id);
        if (!state.displayedOf(dom, id))
            continue;
        // Viewport features gate on positive overlap area...
        const double overlap = node.rect.intersectionArea(view_rect);
        if (overlap > 0.0) {
            ++out.stats.visibleNodes;
            if (node.isClickable())
                clickable_area += overlap;
            if (node.isLink() ||
                (node.isClickable() &&
                 node.handlerFor(DomEventType::Load)))
                link_area += overlap;
        }
        // ...while the LNES gates on intersection (boundary touch
        // counts) — both evaluated independently, matching the
        // individual methods.
        if (!node.handlers.empty() && node.rect.intersects(view_rect)) {
            for (const HandlerSpec &spec : node.handlers)
                out.candidates.push_back(
                    {{spec.type, id}, node.rect, node.role});
        }
    }
    out.stats.clickableFrac = std::min(1.0, clickable_area / view_area);
    out.stats.visibleLinkFrac = std::min(1.0, link_area / view_area);
    out.stats.scrollable = dom.pageHeight() > viewport.height + 1.0;
    std::sort(out.candidates.begin(), out.candidates.end(),
              [](const AnalyzedCandidate &a, const AnalyzedCandidate &b) {
                  if (a.event.node != b.event.node)
                      return a.event.node < b.event.node;
                  return static_cast<int>(a.event.type) <
                      static_cast<int>(b.event.type);
              });
    return out;
}

void
DomAnalyzer::applyHypothetical(const CandidateEvent &event,
                               DomOverlay &state) const
{
    const SemanticTree &semantics = semanticsOf(state);
    const auto effect = semantics.effectOf(event.node, event.type);
    if (!effect)
        return;
    state.apply(domOf(state), *effect);
}

Rect
DomAnalyzer::nodeRect(const DomOverlay &state, NodeId node) const
{
    const DomTree &dom = domOf(state);
    if (node == kInvalidNode ||
        node >= static_cast<NodeId>(dom.size())) {
        const Viewport viewport = viewportOf(state);
        return viewport.rect();
    }
    return dom.node(node).rect;
}

} // namespace pes
