/**
 * @file
 * Web-application analysis: Likely-Next-Event-Set and viewport features.
 *
 * The DOM analyzer (paper Sec. 5.2) traverses the part of the DOM tree
 * inside the current viewport and accumulates the events registered on the
 * visible nodes — the Likely-Next-Event-Set (LNES) the sequence learner
 * predicts from. Because one event's execution can mutate the visible DOM,
 * the analyzer supports *hypothetical* rollouts: applying an event's
 * statically memoized consequence (SemanticTree) to a DomOverlay so the
 * LNES of the state *after* a predicted event can be computed without
 * evaluating any callback.
 */

#ifndef PES_WEB_DOM_ANALYZER_HH
#define PES_WEB_DOM_ANALYZER_HH

#include <vector>

#include "web/web_app.hh"

namespace pes {

/** One LNES entry: an event that could legally be triggered next. */
struct CandidateEvent
{
    DomEventType type = DomEventType::Click;
    NodeId node = kInvalidNode;

    bool operator==(const CandidateEvent &other) const
    {
        return type == other.type && node == other.node;
    }
    bool operator!=(const CandidateEvent &other) const
    {
        return !(*this == other);
    }
};

/** Application-inherent viewport features (paper Table 1). */
struct ViewportStats
{
    /** Fraction of the viewport covered by clickable elements. */
    double clickableFrac = 0.0;
    /** Fraction of the viewport covered by visible links. */
    double visibleLinkFrac = 0.0;
    /** Number of visible nodes (diagnostic). */
    int visibleNodes = 0;
    /** Whether the page extends beyond the viewport (scrollable). */
    bool scrollable = false;
};

/** One analyze() entry: a LNES candidate with precomputed geometry. */
struct AnalyzedCandidate
{
    CandidateEvent event;
    /** The candidate node's rect (what nodeRect() would return). */
    Rect rect;
    /** The candidate node's accessibility role. */
    NodeRole role = NodeRole::Container;
};

/**
 * Everything one prediction step needs, produced by a single DOM
 * traversal: the LNES with per-candidate geometry and role, the Table-1
 * viewport features, and the resolved viewport.
 */
struct DomAnalysis
{
    std::vector<AnalyzedCandidate> candidates;
    ViewportStats stats;
    Viewport viewport;
};

/**
 * Static analyzer over a WebAppSession's committed state plus an optional
 * hypothetical overlay.
 */
class DomAnalyzer
{
  public:
    /**
     * @param session Live session; the analyzer reads its committed DOMs.
     *
     * The analyzer holds a reference; the session must outlive it.
     */
    explicit DomAnalyzer(const WebAppSession &session);

    /**
     * Likely-Next-Event-Set for the state described by @p state
     * (page + scroll + display overrides). Enumerates every (type, node)
     * pair registered on a visible node, plus the document-level scroll
     * candidates when the page is scrollable.
     */
    std::vector<CandidateEvent>
    likelyNextEvents(const DomOverlay &state) const;

    /**
     * Batched equivalent of likelyNextEvents + viewportStats + a
     * nodeRect/nodeRole call per candidate, in ONE traversal of the
     * page. Every per-node check matches the individual methods
     * exactly (LNES gate: rect intersects the viewport; feature gate:
     * positive overlap area), so consumers switching to analyze()
     * observe identical candidates, features and geometry — this is
     * the predictor's hot path, not a semantic change.
     */
    DomAnalysis analyze(const DomOverlay &state) const;

    /**
     * Every (type, node) pair registered anywhere on the current page of
     * @p state, ignoring visibility. This is what a learner-only
     * predictor (no DOM analysis, Sec. 6.5 ablation) has to choose from.
     */
    std::vector<CandidateEvent>
    allPageEvents(const DomOverlay &state) const;

    /** The viewport implied by @p state (device size + overlay scroll). */
    Viewport viewportFor(const DomOverlay &state) const;

    /** Accessibility role of @p node on the page of @p state. */
    NodeRole nodeRole(const DomOverlay &state, NodeId node) const;

    /** Table-1 viewport features for the state @p state. */
    ViewportStats viewportStats(const DomOverlay &state) const;

    /**
     * Statically roll @p state forward through @p event using the
     * SemanticTree (no callback evaluation). Display toggles, scrolls and
     * navigations all update the overlay in place.
     */
    void applyHypothetical(const CandidateEvent &event,
                           DomOverlay &state) const;

    /**
     * Geometric center of @p node on the page of @p state, used as the
     * touch position for interaction-dependent features. Scroll events
     * report the viewport center.
     */
    Rect nodeRect(const DomOverlay &state, NodeId node) const;

  private:
    const DomTree &domOf(const DomOverlay &state) const;
    const SemanticTree &semanticsOf(const DomOverlay &state) const;
    Viewport viewportOf(const DomOverlay &state) const;

    const WebAppSession *session_;
};

} // namespace pes

#endif // PES_WEB_DOM_ANALYZER_HH
