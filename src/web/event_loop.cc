#include "web/event_loop.hh"

namespace pes {

void
EventLoop::push(const QueuedEvent &event)
{
    queue_.push_back(event);
    lengthStats_.add(static_cast<double>(queue_.size()));
}

std::optional<QueuedEvent>
EventLoop::pop()
{
    if (queue_.empty())
        return std::nullopt;
    QueuedEvent event = queue_.front();
    queue_.pop_front();
    return event;
}

std::optional<QueuedEvent>
EventLoop::front() const
{
    if (queue_.empty())
        return std::nullopt;
    return queue_.front();
}

} // namespace pes
