/**
 * @file
 * Main-thread event queue.
 *
 * The Web runtime dispatches events from a FIFO queue on the main thread.
 * The queue also tracks occupancy statistics: the paper observes that the
 * average queue length stays below 2 because humans generate interactions
 * slowly (Sec. 4.2) — a property our traces must reproduce, verified by a
 * test and reported by the metrics module.
 */

#ifndef PES_WEB_EVENT_LOOP_HH
#define PES_WEB_EVENT_LOOP_HH

#include <deque>
#include <optional>
#include <vector>

#include "util/stats.hh"
#include "util/types.hh"

namespace pes {

/** A queued, not-yet-executed input event (index into the trace). */
struct QueuedEvent
{
    int traceIndex = -1;
    TimeMs arrival = 0.0;
};

/**
 * FIFO main-thread event queue with occupancy statistics.
 */
class EventLoop
{
  public:
    /** Enqueue an arrived event (samples queue-length statistics). */
    void push(const QueuedEvent &event);

    /** Dequeue the oldest event; nullopt when empty. */
    std::optional<QueuedEvent> pop();

    /** Peek at the oldest event without removing it. */
    std::optional<QueuedEvent> front() const;

    /** Current number of queued events. */
    size_t length() const { return queue_.size(); }

    /** Snapshot of the queued events, oldest first. */
    std::vector<QueuedEvent> snapshot() const
    {
        return {queue_.begin(), queue_.end()};
    }

    /** True when no events are pending. */
    bool empty() const { return queue_.empty(); }

    /** Queue length sampled at each arrival (including the new event). */
    const RunningStats &lengthStats() const { return lengthStats_; }

    /**
     * Drop all queued events and the occupancy statistics, keeping the
     * deque's allocated storage (engine-reuse fast path).
     */
    void clear()
    {
        queue_.clear();
        lengthStats_ = RunningStats{};
    }

  private:
    std::deque<QueuedEvent> queue_;
    RunningStats lengthStats_;
};

} // namespace pes

#endif // PES_WEB_EVENT_LOOP_HH
