#include "web/event_types.hh"

#include <cstring>

#include "util/logging.hh"

namespace pes {

Interaction
interactionOf(DomEventType type)
{
    switch (type) {
      case DomEventType::Load:
        return Interaction::Load;
      case DomEventType::Click:
      case DomEventType::TouchStart:
      case DomEventType::Submit:
        return Interaction::Tap;
      case DomEventType::Scroll:
      case DomEventType::TouchMove:
        return Interaction::Move;
    }
    panic("interactionOf: invalid event type");
}

TimeMs
qosTargetMs(Interaction interaction)
{
    switch (interaction) {
      case Interaction::Load:
        return 3000.0;
      case Interaction::Tap:
        return 300.0;
      case Interaction::Move:
        return 33.0;
    }
    panic("qosTargetMs: invalid interaction");
}

TimeMs
qosTargetMs(DomEventType type)
{
    return qosTargetMs(interactionOf(type));
}

const char *
domEventTypeName(DomEventType type)
{
    switch (type) {
      case DomEventType::Load:
        return "load";
      case DomEventType::Click:
        return "click";
      case DomEventType::TouchStart:
        return "touchstart";
      case DomEventType::Scroll:
        return "scroll";
      case DomEventType::TouchMove:
        return "touchmove";
      case DomEventType::Submit:
        return "submit";
    }
    panic("domEventTypeName: invalid event type");
}

const char *
interactionName(Interaction interaction)
{
    switch (interaction) {
      case Interaction::Load:
        return "load";
      case Interaction::Tap:
        return "tap";
      case Interaction::Move:
        return "move";
    }
    panic("interactionName: invalid interaction");
}

bool
parseDomEventType(const char *name, DomEventType &out)
{
    for (int i = 0; i < kNumDomEventTypes; ++i) {
        const auto type = static_cast<DomEventType>(i);
        if (std::strcmp(name, domEventTypeName(type)) == 0) {
            out = type;
            return true;
        }
    }
    return false;
}

} // namespace pes
