/**
 * @file
 * Event taxonomy of the mobile Web execution model.
 *
 * The paper builds on three primitive user interactions — load, tap, and
 * move — with QoS targets of 3 s, 300 ms and 33 ms respectively (Sec. 4.2,
 * following GreenWeb). Each primitive manifests as one or more DOM event
 * types (e.g. a "tap" arrives as either click or touchstart, Sec. 5.5);
 * the predictor operates at DOM-event granularity.
 */

#ifndef PES_WEB_EVENT_TYPES_HH
#define PES_WEB_EVENT_TYPES_HH

#include "util/types.hh"

namespace pes {

/** DOM-level event types the runtime dispatches. */
enum class DomEventType
{
    Load = 0,     ///< page navigation / initial load
    Click,        ///< tap manifestation #1
    TouchStart,   ///< tap manifestation #2
    Scroll,       ///< move manifestation #1
    TouchMove,    ///< move manifestation #2
    Submit,       ///< form submission (tap-class QoS)
};

/** Number of DomEventType values (predictor class count). */
constexpr int kNumDomEventTypes = 6;

/** The three primitive interactions of the paper. */
enum class Interaction
{
    Load = 0,
    Tap,
    Move,
};

/** Number of Interaction values. */
constexpr int kNumInteractions = 3;

/** Primitive interaction an event type belongs to. */
Interaction interactionOf(DomEventType type);

/** QoS target (deadline) of a primitive interaction: 3 s / 300 ms / 33 ms. */
TimeMs qosTargetMs(Interaction interaction);

/** QoS target of an event type (via its interaction class). */
TimeMs qosTargetMs(DomEventType type);

/** Lower-case event name, e.g. "touchstart". */
const char *domEventTypeName(DomEventType type);

/** Interaction name: "load" / "tap" / "move". */
const char *interactionName(Interaction interaction);

/** Parse an event name; returns false when unknown. */
bool parseDomEventType(const char *name, DomEventType &out);

} // namespace pes

#endif // PES_WEB_EVENT_TYPES_HH
