/**
 * @file
 * Page geometry: rectangles and the scrollable viewport.
 *
 * Page coordinates are CSS pixels with y growing downward. The viewport is
 * a fixed-size window whose vertical position is the scroll offset.
 */

#ifndef PES_WEB_GEOMETRY_HH
#define PES_WEB_GEOMETRY_HH

#include <algorithm>
#include <cmath>

namespace pes {

/** Axis-aligned rectangle in page coordinates. */
struct Rect
{
    double x = 0.0;
    double y = 0.0;
    double w = 0.0;
    double h = 0.0;

    /** Rectangle area. */
    double area() const { return w * h; }

    /** Center x. */
    double cx() const { return x + w / 2.0; }
    /** Center y. */
    double cy() const { return y + h / 2.0; }

    /** Area of the intersection with @p other. */
    double
    intersectionArea(const Rect &other) const
    {
        const double ix = std::max(0.0, std::min(x + w, other.x + other.w) -
                                   std::max(x, other.x));
        const double iy = std::max(0.0, std::min(y + h, other.y + other.h) -
                                   std::max(y, other.y));
        return ix * iy;
    }

    /** True when the rectangles overlap with positive area. */
    bool intersects(const Rect &other) const
    {
        return intersectionArea(other) > 0.0;
    }

    /** Euclidean distance between the centers of two rectangles. */
    static double
    centerDistance(const Rect &a, const Rect &b)
    {
        const double dx = a.cx() - b.cx();
        const double dy = a.cy() - b.cy();
        return std::sqrt(dx * dx + dy * dy);
    }
};

/** The visible window over a page. */
struct Viewport
{
    /** Device width in CSS pixels (360 = common mobile width). */
    double width = 360.0;
    /** Device height in CSS pixels. */
    double height = 640.0;
    /** Vertical scroll offset (top of the visible window). */
    double scrollY = 0.0;

    /** The visible region as a page-coordinate rectangle. */
    Rect
    rect() const
    {
        return {0.0, scrollY, width, height};
    }
};

} // namespace pes

#endif // PES_WEB_GEOMETRY_HH
