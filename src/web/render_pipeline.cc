#include "web/render_pipeline.hh"

#include "util/logging.hh"

namespace pes {

const char *
renderStageName(RenderStage stage)
{
    switch (stage) {
      case RenderStage::Style:
        return "style";
      case RenderStage::Layout:
        return "layout";
      case RenderStage::Paint:
        return "paint";
      case RenderStage::Composite:
        return "composite";
    }
    panic("renderStageName: invalid stage");
}

Workload
RenderWork::total() const
{
    Workload sum;
    for (const Workload &w : stages)
        sum = sum + w;
    return sum;
}

RenderWork
RenderWork::scaled(double factor) const
{
    RenderWork out;
    for (size_t i = 0; i < stages.size(); ++i)
        out.stages[i] = stages[i].scaled(factor);
    return out;
}

RenderPipeline::RenderPipeline(const Coefficients &coeffs)
    : coeffs_(coeffs)
{
}

RenderWork
RenderPipeline::frameWork(size_t dom_size, int dirty_nodes,
                          double scale) const
{
    RenderWork work;
    for (int s = 0; s < kNumRenderStages; ++s) {
        const auto i = static_cast<size_t>(s);
        const MegaCycles cycles =
            (coeffs_.fixed[i] +
             coeffs_.perDirtyNode[i] * static_cast<double>(dirty_nodes) +
             coeffs_.perDomNode[i] * static_cast<double>(dom_size)) * scale;
        Workload stage;
        stage.ndep = cycles;
        // Memory time scales with the stage's cycle time at the reference
        // frequency: bigger frames touch more memory.
        stage.tmemMs = coeffs_.memFraction *
            (1000.0 * cycles / coeffs_.referenceFreq);
        work.stages[i] = stage;
    }
    return work;
}

} // namespace pes
