/**
 * @file
 * Rendering-engine cost model.
 *
 * After an event's callback runs, the result flows through the rendering
 * pipeline — style resolution, layout, paint, composite — to produce a
 * frame (paper Fig. 1). Each stage is a Workload (Eqn.-1 terms) whose size
 * scales with the number of DOM nodes the callback dirtied and with the
 * page size. The frame is then held until the next display refresh
 * (VsyncClock).
 */

#ifndef PES_WEB_RENDER_PIPELINE_HH
#define PES_WEB_RENDER_PIPELINE_HH

#include <array>
#include <cstddef>

#include "hw/dvfs_model.hh"

namespace pes {

/** Pipeline stages in execution order. */
enum class RenderStage
{
    Style = 0,
    Layout,
    Paint,
    Composite,
};

/** Number of pipeline stages. */
constexpr int kNumRenderStages = 4;

/** Stage name ("style", "layout", ...). */
const char *renderStageName(RenderStage stage);

/**
 * Per-stage workloads of producing one frame.
 */
struct RenderWork
{
    std::array<Workload, kNumRenderStages> stages;

    /** Workload of one stage. */
    const Workload &stage(RenderStage s) const
    {
        return stages[static_cast<size_t>(s)];
    }

    /** Sum over all stages. */
    Workload total() const;

    /** Elementwise scale of every stage. */
    RenderWork scaled(double factor) const;
};

/**
 * Cost model mapping invalidation size to per-stage work.
 */
class RenderPipeline
{
  public:
    /** Tunable stage coefficients (mega-cycles). */
    struct Coefficients
    {
        /** Fixed cycles per stage regardless of dirty size. */
        std::array<MegaCycles, kNumRenderStages> fixed{1.0, 2.0, 3.0, 1.5};
        /** Cycles per dirtied node per stage. */
        std::array<MegaCycles, kNumRenderStages> perDirtyNode{
            0.40, 0.80, 1.20, 0.30};
        /** Cycles per DOM node per stage (whole-tree walks). */
        std::array<MegaCycles, kNumRenderStages> perDomNode{
            0.012, 0.008, 0.004, 0.002};
        /**
         * Memory-time per stage as a fraction of the stage's cycle time at
         * the reference frequency (1.8 GHz): render stages are partly
         * memory bound (raster, texture upload).
         */
        double memFraction = 0.18;
        /** Reference frequency for the memFraction conversion (MHz). */
        FreqMhz referenceFreq = 1800.0;
    };

    RenderPipeline() = default;
    explicit RenderPipeline(const Coefficients &coeffs);

    /**
     * Per-stage work for a frame that dirtied @p dirty_nodes of a
     * @p dom_size -node page, scaled by the app-specific @p scale
     * (visual complexity).
     */
    RenderWork frameWork(size_t dom_size, int dirty_nodes,
                         double scale = 1.0) const;

    /** The active coefficients. */
    const Coefficients &coefficients() const { return coeffs_; }

  private:
    Coefficients coeffs_;
};

} // namespace pes

#endif // PES_WEB_RENDER_PIPELINE_HH
