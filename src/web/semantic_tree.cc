#include "web/semantic_tree.hh"

#include <algorithm>

namespace pes {

uint64_t
SemanticTree::key(NodeId node, DomEventType type)
{
    return (static_cast<uint64_t>(static_cast<uint32_t>(node)) << 8) |
        static_cast<uint64_t>(type);
}

void
SemanticTree::memoize(NodeId node, DomEventType type,
                      const HandlerEffect &effect)
{
    table_[key(node, type)] = SemanticEntry{node, type, effect};
}

SemanticTree
SemanticTree::fromDom(const DomTree &dom)
{
    SemanticTree tree;
    for (size_t i = 0; i < dom.size(); ++i) {
        const DomNode &node = dom.node(static_cast<NodeId>(i));
        for (const HandlerSpec &spec : node.handlers)
            tree.memoize(node.id, spec.type, spec.effect);
    }
    return tree;
}

std::optional<HandlerEffect>
SemanticTree::effectOf(NodeId node, DomEventType type) const
{
    const auto it = table_.find(key(node, type));
    if (it == table_.end())
        return std::nullopt;
    return it->second.effect;
}

std::vector<SemanticEntry>
SemanticTree::entries() const
{
    std::vector<SemanticEntry> out;
    out.reserve(table_.size());
    for (const auto &[k, entry] : table_)
        out.push_back(entry);
    std::sort(out.begin(), out.end(),
              [](const SemanticEntry &a, const SemanticEntry &b) {
                  if (a.node != b.node)
                      return a.node < b.node;
                  return static_cast<int>(a.type) < static_cast<int>(b.type);
              });
    return out;
}

bool
DomOverlay::displayedOf(const DomTree &dom, NodeId id) const
{
    // Committed-state snapshots dominate this call, and they carry no
    // overrides: skip the per-ancestor map lookups entirely then.
    if (displayOverride.empty()) {
        NodeId cur = id;
        while (cur != kInvalidNode) {
            const DomNode &n = dom.node(cur);
            if (!n.displayed)
                return false;
            cur = n.parent;
        }
        return true;
    }
    NodeId cur = id;
    while (cur != kInvalidNode) {
        const DomNode &n = dom.node(cur);
        const auto it = displayOverride.find(cur);
        const bool displayed =
            it != displayOverride.end() ? it->second : n.displayed;
        if (!displayed)
            return false;
        cur = n.parent;
    }
    return true;
}

bool
DomOverlay::apply(const DomTree &dom, const HandlerEffect &effect)
{
    switch (effect.kind) {
      case EffectKind::None:
        return true;
      case EffectKind::ToggleDisplay: {
        if (effect.target == kInvalidNode)
            return true;
        const auto it = displayOverride.find(effect.target);
        const bool current = it != displayOverride.end()
            ? it->second : dom.node(effect.target).displayed;
        displayOverride[effect.target] = !current;
        return true;
      }
      case EffectKind::ScrollBy: {
        const double page_height = dom.pageHeight();
        scrollY = std::clamp(scrollY + effect.scrollDelta, 0.0,
                             std::max(0.0, page_height - 1.0));
        return true;
      }
      case EffectKind::Navigate:
        displayOverride.clear();
        scrollY = 0.0;
        pageId = effect.pageId;
        return false;
    }
    return true;
}

} // namespace pes
