/**
 * @file
 * Semantic Tree: static post-callback DOM-state inference.
 *
 * The DOM analyzer must know the DOM state *after* a predicted event
 * without evaluating the event's callback (paper Sec. 5.2, Fig. 7). The
 * paper piggybacks this on the browser's Accessibility Tree: during parsing
 * it memoizes, e.g., that a <div> is a button that toggles a particular
 * menu node. This class is that memo: a side table mapping (node, event
 * type) to the semantic consequence, populated at page-build ("parse")
 * time, and queried statically by the analyzer when rolling out
 * hypothetical multi-event futures.
 */

#ifndef PES_WEB_SEMANTIC_TREE_HH
#define PES_WEB_SEMANTIC_TREE_HH

#include <optional>
#include <unordered_map>
#include <vector>

#include "web/dom.hh"

namespace pes {

/**
 * Statically inferred consequence of triggering an event on a node.
 */
struct SemanticEntry
{
    NodeId node = kInvalidNode;
    DomEventType type = DomEventType::Click;
    HandlerEffect effect;
};

/**
 * The semantic side table for one page.
 */
class SemanticTree
{
  public:
    /** Memoize the consequence of (node, type) (called at parse time). */
    void memoize(NodeId node, DomEventType type,
                 const HandlerEffect &effect);

    /**
     * Build the full table from a parsed DOM tree — the analogue of
     * deriving the Accessibility Tree during parsing.
     */
    static SemanticTree fromDom(const DomTree &dom);

    /** Statically look up the consequence of (node, type). */
    std::optional<HandlerEffect>
    effectOf(NodeId node, DomEventType type) const;

    /** All memoized entries (for inspection/tests). */
    std::vector<SemanticEntry> entries() const;

    /** Number of memoized entries. */
    size_t size() const { return table_.size(); }

  private:
    static uint64_t key(NodeId node, DomEventType type);

    std::unordered_map<uint64_t, SemanticEntry> table_;
};

/**
 * A lightweight overlay describing a *hypothetical* DOM state: the result
 * of applying zero or more predicted-but-unexecuted events on top of the
 * committed state. Used by the DOM analyzer to compute the LNES several
 * events ahead (prediction degree > 1) without mutating the real DOM.
 */
struct DomOverlay
{
    /** Display overrides (node -> displayed?) from hypothetical toggles. */
    std::unordered_map<NodeId, bool> displayOverride;
    /** Hypothetical scroll offset. */
    double scrollY = 0.0;
    /** Hypothetical current page (changes on Navigate). */
    int pageId = 0;

    /** Displayed state of @p id under this overlay. */
    bool displayedOf(const DomTree &dom, NodeId id) const;

    /**
     * Apply a statically inferred effect to this overlay (toggle, scroll,
     * navigate). Returns false when the effect leaves the current page
     * (Navigate) — the caller must re-anchor to the destination page.
     */
    bool apply(const DomTree &dom, const HandlerEffect &effect);
};

} // namespace pes

#endif // PES_WEB_SEMANTIC_TREE_HH
