#include "web/vsync.hh"

#include <cmath>

#include "util/logging.hh"

namespace pes {

VsyncClock::VsyncClock(double rate_hz)
{
    panic_if(rate_hz <= 0.0, "VsyncClock: rate must be positive");
    period_ = 1000.0 / rate_hz;
}

TimeMs
VsyncClock::nextVsyncAt(TimeMs t) const
{
    if (t <= 0.0)
        return 0.0;
    const double frames = t / period_;
    const double up = std::ceil(frames);
    // Guard against floating-point jitter when t is already on a boundary.
    if (up - frames < 1e-9)
        return up * period_;
    return up * period_;
}

long
VsyncClock::frameIndexAt(TimeMs t) const
{
    return static_cast<long>(std::floor(t / period_ + 1e-9));
}

} // namespace pes
