/**
 * @file
 * Display refresh (VSync) clock.
 *
 * Frames become visible only at display refresh boundaries — on mobile,
 * typically 60 Hz (paper Sec. 2, Fig. 1). Event latency therefore includes
 * the idle wait between frame completion and the next VSync.
 */

#ifndef PES_WEB_VSYNC_HH
#define PES_WEB_VSYNC_HH

#include "util/types.hh"

namespace pes {

/**
 * Fixed-rate display refresh clock starting at t = 0.
 */
class VsyncClock
{
  public:
    /** @param rate_hz Display refresh rate (default 60 Hz). */
    explicit VsyncClock(double rate_hz = 60.0);

    /** Refresh period in ms (16.67 ms at 60 Hz). */
    TimeMs periodMs() const { return period_; }

    /**
     * First refresh instant at or after @p t — when a frame finished at
     * @p t becomes visible.
     */
    TimeMs nextVsyncAt(TimeMs t) const;

    /** Number of complete refresh intervals before @p t. */
    long frameIndexAt(TimeMs t) const;

  private:
    TimeMs period_;
};

} // namespace pes

#endif // PES_WEB_VSYNC_HH
