#include "web/web_app.hh"

#include <algorithm>

#include "util/logging.hh"

namespace pes {

WebApp::WebApp(std::string name, Viewport viewport)
    : name_(std::move(name)), viewport_(viewport)
{
}

int
WebApp::addPage(DomTree dom)
{
    Page page;
    page.semantics = SemanticTree::fromDom(dom);
    page.dom = std::move(dom);
    pages_.push_back(std::move(page));
    return static_cast<int>(pages_.size()) - 1;
}

const DomTree &
WebApp::dom(int page_id) const
{
    panic_if(page_id < 0 || page_id >= numPages(),
             "WebApp::dom: bad page id %d", page_id);
    return pages_[static_cast<size_t>(page_id)].dom;
}

const SemanticTree &
WebApp::semantics(int page_id) const
{
    panic_if(page_id < 0 || page_id >= numPages(),
             "WebApp::semantics: bad page id %d", page_id);
    return pages_[static_cast<size_t>(page_id)].semantics;
}

WebAppSession::WebAppSession(const WebApp &app)
    : app_(&app), viewport_(app.viewportTemplate())
{
    panic_if(app.numPages() == 0, "WebAppSession: app has no pages");
    liveDoms_.reserve(static_cast<size_t>(app.numPages()));
    for (int p = 0; p < app.numPages(); ++p)
        liveDoms_.push_back(app.dom(p));
    dirty_.assign(liveDoms_.size(), 0);
    viewport_.scrollY = 0.0;
}

void
WebAppSession::reset()
{
    for (size_t p = 0; p < liveDoms_.size(); ++p) {
        if (!dirty_[p])
            continue;
        liveDoms_[p] = app_->dom(static_cast<int>(p));
        dirty_[p] = 0;
    }
    pageId_ = 0;
    viewport_ = app_->viewportTemplate();
    viewport_.scrollY = 0.0;
    committedEvents_ = 0;
}

const DomTree &
WebAppSession::dom() const
{
    return liveDoms_[static_cast<size_t>(pageId_)];
}

const SemanticTree &
WebAppSession::semantics() const
{
    return app_->semantics(pageId_);
}

void
WebAppSession::commitEvent(NodeId node, DomEventType type)
{
    const DomTree &tree = dom();
    if (node < 0 || node >= static_cast<NodeId>(tree.size()))
        return;
    const HandlerSpec *handler = tree.node(node).handlerFor(type);
    if (!handler)
        return;
    applyEffect(handler->effect);
    ++committedEvents_;
}

void
WebAppSession::applyEffect(const HandlerEffect &effect)
{
    DomTree &tree = liveDoms_[static_cast<size_t>(pageId_)];
    switch (effect.kind) {
      case EffectKind::None:
        break;
      case EffectKind::ToggleDisplay:
        if (effect.target != kInvalidNode &&
            effect.target < static_cast<NodeId>(tree.size())) {
            tree.setDisplayed(effect.target,
                              !tree.node(effect.target).displayed);
            dirty_[static_cast<size_t>(pageId_)] = 1;
        }
        break;
      case EffectKind::ScrollBy: {
        const double page_height = tree.pageHeight();
        const double max_scroll =
            std::max(0.0, page_height - viewport_.height);
        viewport_.scrollY = std::clamp(viewport_.scrollY +
                                       effect.scrollDelta, 0.0, max_scroll);
        break;
      }
      case EffectKind::Navigate:
        if (effect.pageId >= 0 && effect.pageId < app_->numPages()) {
            // Navigation resets the destination page to its pristine DOM
            // (a fresh parse), like a real page load. A page that was
            // never mutated is already pristine — no copy needed.
            pageId_ = effect.pageId;
            if (dirty_[static_cast<size_t>(pageId_)]) {
                liveDoms_[static_cast<size_t>(pageId_)] =
                    app_->dom(pageId_);
                dirty_[static_cast<size_t>(pageId_)] = 0;
            }
            viewport_.scrollY = 0.0;
        }
        break;
    }
}

DomOverlay
WebAppSession::snapshotState() const
{
    DomOverlay overlay;
    overlay.pageId = pageId_;
    overlay.scrollY = viewport_.scrollY;
    return overlay;
}

} // namespace pes
