/**
 * @file
 * A mobile Web application: pages, semantic side tables, and live state.
 *
 * WebApp is the static application definition (every page's DOM plus its
 * parse-time SemanticTree). WebAppSession is one user-facing instance with
 * mutable state — current page, scroll position, committed DOM mutations —
 * the thing the runtime dispatches events into. Sessions copy the app's
 * DOM so concurrent simulations never alias state.
 */

#ifndef PES_WEB_WEB_APP_HH
#define PES_WEB_WEB_APP_HH

#include <string>
#include <vector>

#include "web/dom.hh"
#include "web/semantic_tree.hh"

namespace pes {

/**
 * Immutable application definition.
 */
class WebApp
{
  public:
    /** Create an app; @p viewport fixes the device window size. */
    explicit WebApp(std::string name, Viewport viewport = Viewport{});

    /** Add a page; returns its page id. Builds the SemanticTree. */
    int addPage(DomTree dom);

    /** Application name (e.g. "cnn"). */
    const std::string &name() const { return name_; }

    /** Number of pages. */
    int numPages() const { return static_cast<int>(pages_.size()); }

    /** DOM of page @p page_id. */
    const DomTree &dom(int page_id) const;

    /** Semantic side table of page @p page_id. */
    const SemanticTree &semantics(int page_id) const;

    /** Device viewport template (width/height; scroll belongs to state). */
    const Viewport &viewportTemplate() const { return viewport_; }

  private:
    struct Page
    {
        DomTree dom;
        SemanticTree semantics;
    };

    std::string name_;
    Viewport viewport_;
    std::vector<Page> pages_;
};

/**
 * One live browsing session over a WebApp.
 */
class WebAppSession
{
  public:
    /** Start a session on page 0 with scroll 0. */
    explicit WebAppSession(const WebApp &app);

    /**
     * Return to the pristine start-of-session state (page 0, scroll 0,
     * no committed events) without re-copying every page DOM: only the
     * pages whose live DOM actually diverged from the app's pristine
     * copy are restored. Equivalent to constructing a fresh session.
     */
    void reset();

    /** The application definition. */
    const WebApp &app() const { return *app_; }

    /** Current page id. */
    int currentPage() const { return pageId_; }

    /** Current viewport (device size + live scroll offset). */
    const Viewport &viewport() const { return viewport_; }

    /** Live (committed-state) DOM of the current page. */
    const DomTree &dom() const;

    /** Semantic table of the current page. */
    const SemanticTree &semantics() const;

    /**
     * Commit an event: run its handler's application-state effect
     * (toggle / navigate / scroll). Events without a registered handler
     * are ignored (the dispatch is a no-op, like real DOM).
     */
    void commitEvent(NodeId node, DomEventType type);

    /**
     * A DomOverlay snapshot anchored at the committed state — the seed
     * for hypothetical rollouts by the DOM analyzer.
     */
    DomOverlay snapshotState() const;

    /** Number of committed events so far. */
    int committedEvents() const { return committedEvents_; }

  private:
    void applyEffect(const HandlerEffect &effect);

    const WebApp *app_;
    /** Mutable copies of every page's DOM (committed display states). */
    std::vector<DomTree> liveDoms_;
    /** Pages whose live DOM may differ from the pristine copy. */
    std::vector<char> dirty_;
    int pageId_ = 0;
    Viewport viewport_;
    int committedEvents_ = 0;
};

} // namespace pes

#endif // PES_WEB_WEB_APP_HH
