/**
 * @file
 * Property suite over all 18 benchmark applications: every app's
 * synthesized DOM, generated sessions, and simulated replays must
 * satisfy the structural invariants the evaluation relies on —
 * parameterized so a regression in any single profile is pinpointed.
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "trace/dom_builder.hh"
#include "trace/user_model.hh"
#include "util/logging.hh"
#include "web/dom_analyzer.hh"

namespace pes {
namespace {

class PerApp : public ::testing::TestWithParam<int>
{
  protected:
    const AppProfile &
    profile() const
    {
        return appRegistry()[static_cast<size_t>(GetParam())];
    }

    static Experiment &
    experiment()
    {
        static Experiment exp;
        static bool init = false;
        if (!init) {
            setQuiet(true);
            exp.trainedModel();
            init = true;
        }
        return exp;
    }
};

TEST_P(PerApp, DomIsWellFormed)
{
    const AppProfile &p = profile();
    const WebApp &app = experiment().generator().appFor(p);
    ASSERT_EQ(app.numPages(), p.numPages);
    for (int page = 0; page < app.numPages(); ++page) {
        const DomTree &dom = app.dom(page);
        EXPECT_GT(dom.size(), 10u) << p.name << " page " << page;
        // Parent/child links are consistent.
        for (size_t n = 1; n < dom.size(); ++n) {
            const DomNode &node = dom.node(static_cast<NodeId>(n));
            ASSERT_GE(node.parent, 0);
            const auto &siblings = dom.node(node.parent).children;
            EXPECT_NE(std::find(siblings.begin(), siblings.end(),
                                node.id),
                      siblings.end());
        }
        // Every Navigate effect targets an existing page.
        for (size_t n = 0; n < dom.size(); ++n) {
            for (const HandlerSpec &h :
                 dom.node(static_cast<NodeId>(n)).handlers) {
                if (h.effect.kind == EffectKind::Navigate) {
                    EXPECT_GE(h.effect.pageId, 0);
                    EXPECT_LT(h.effect.pageId, app.numPages());
                }
                if (h.effect.kind == EffectKind::ToggleDisplay) {
                    EXPECT_GE(h.effect.target, 0);
                    EXPECT_LT(h.effect.target,
                              static_cast<NodeId>(dom.size()));
                }
            }
        }
        // The semantic tree memoized every handler.
        EXPECT_GT(app.semantics(page).size(), 0u);
    }
}

TEST_P(PerApp, LnesNeverEmptyDuringSession)
{
    // The user model and the predictor both require that some event is
    // always possible; replay a committed session checking the LNES.
    const AppProfile &p = profile();
    const WebApp &app = experiment().generator().appFor(p);
    const InteractionTrace trace =
        experiment().generator().generate(p, 4040);
    WebAppSession session(app);
    DomAnalyzer analyzer(session);
    for (const TraceEvent &e : trace.events) {
        EXPECT_FALSE(
            analyzer.likelyNextEvents(session.snapshotState()).empty())
            << p.name;
        session.commitEvent(e.node, e.type);
    }
}

TEST_P(PerApp, TraceInvariants)
{
    const AppProfile &p = profile();
    Experiment &exp = experiment();
    const DvfsLatencyModel model(exp.platform());
    const VsyncClock vsync;

    const InteractionTrace trace = exp.generator().generate(p, 7070);
    ASSERT_GE(trace.size(), 8u) << p.name;
    ASSERT_LE(trace.size(), static_cast<size_t>(UserModel::kMaxEvents));
    EXPECT_EQ(trace.events.front().type, DomEventType::Load);

    TimeMs chain = 0.0;
    for (size_t i = 0; i < trace.events.size(); ++i) {
        const TraceEvent &e = trace.events[i];
        if (i > 0)
            EXPECT_GT(e.arrival, trace.events[i - 1].arrival) << p.name;
        // Positive workloads with a sane ceiling.
        EXPECT_GT(e.totalWork().ndep, 0.0);
        EXPECT_LT(e.totalWork().ndep, 10000.0);
        // Oracle feasibility: back-to-back max-config chain meets every
        // deadline (the zero-violation guarantee).
        chain += model.latency(e.totalWork(), exp.platform().maxConfig());
        EXPECT_LE(vsync.nextVsyncAt(std::max(chain, e.arrival)),
                  e.arrival + e.qosTarget() + 1e-6)
            << p.name << " event " << i;
        // Class keys are stable and non-zero.
        EXPECT_NE(e.classKey, 0u);
    }
}

TEST_P(PerApp, OracleZeroViolationsEverywhere)
{
    const AppProfile &p = profile();
    Experiment &exp = experiment();
    const auto oracle = exp.makeScheduler(SchedulerKind::Oracle);
    const InteractionTrace trace = exp.generator().generate(p, 8081);
    const SimResult r = exp.runTrace(p, trace, *oracle);
    EXPECT_NEAR(r.violationRate(), 0.0, 1e-12) << p.name;
    EXPECT_EQ(r.events.size(), trace.size());
}

TEST_P(PerApp, PesServesEveryEventAndStaysSane)
{
    const AppProfile &p = profile();
    Experiment &exp = experiment();
    const auto pes = exp.makeScheduler(SchedulerKind::Pes);
    const InteractionTrace trace = exp.generator().generate(p, 9092);
    const SimResult r = exp.runTrace(p, trace, *pes);

    ASSERT_EQ(r.events.size(), trace.size());
    for (const EventRecord &e : r.events) {
        EXPECT_GE(e.frameReady, 0.0);
        EXPECT_GE(e.displayed, e.arrival);
        EXPECT_GE(e.configIndex, 0);
        EXPECT_LT(e.configIndex, exp.platform().numConfigs());
    }
    // Energy identity holds on every app.
    EXPECT_NEAR(r.totalEnergy,
                r.busyEnergy + r.idleEnergy + r.overheadEnergy +
                    r.wasteEnergy,
                1e-6)
        << p.name;
    // Predictions were validated (unless the app tripped the fallback).
    if (!r.fellBackToReactive)
        EXPECT_GT(r.predictionsMade, 0) << p.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllApps, PerApp, ::testing::Range(0, 18),
    [](const ::testing::TestParamInfo<int> &info) {
        std::string name =
            appRegistry()[static_cast<size_t>(info.param)].name;
        for (char &c : name) {
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return name;
    });

} // namespace
} // namespace pes
