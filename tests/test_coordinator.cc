/**
 * @file
 * Tests for the work-queue coordinator: job partitioning, the lease
 * state machine (claim arbitration, heartbeats, epoch fencing), the
 * coordinator supervision pass (expiry, wedged claims, straggler
 * steal), and the headline guarantee — a sweep executed by multiple
 * workers under chaotic lease scheduling (randomized claim order,
 * mid-range worker death, a crash between checkpoint and manifest
 * save, a fenced zombie) reduces to a report byte-identical to the
 * same sweep run whole in one process.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <random>

#include "coordinator/coordinator.hh"
#include "coordinator/lease_queue.hh"
#include "results/result_format.hh"
#include "results/result_reduce.hh"
#include "results/result_store.hh"
#include "runner/fleet_runner.hh"
#include "runner/reporters.hh"
#include "trace/app_profile.hh"
#include "util/binary_io.hh"

namespace fs = std::filesystem;

namespace pes {
namespace {

/** Unique scratch directory, removed on scope exit. */
struct TempDir
{
    explicit TempDir(const std::string &name)
        : path(fs::temp_directory_path() / ("pes_coord_test_" + name))
    {
        fs::remove_all(path);
        fs::create_directories(path);
    }
    ~TempDir() { fs::remove_all(path); }

    std::string str() const { return path.string(); }

    fs::path path;
};

/** The chaos sweep: 2 schedulers x 2 apps x 3 users = 12 jobs. */
FleetConfig
chaosFleet()
{
    FleetConfig config;
    config.apps = {appByName("cnn"), appByName("social_feed")};
    config.schedulers = {SchedulerKind::Interactive, SchedulerKind::Ebs};
    config.users = 3;
    config.threads = 2;
    return config;
}

std::string
reportBytes(const FleetConfig &config, const MetricsAggregator &metrics)
{
    return JsonReporter::toString(makeFleetReport(config, metrics)) +
        CsvReporter::toString(makeFleetReport(config, metrics));
}

std::string
storeReportBytes(const ResultStore &store)
{
    StoreReduction reduction;
    std::string error;
    EXPECT_TRUE(reduceStore(store, reduction, &error)) << error;
    EXPECT_TRUE(reduction.problems.empty());
    return JsonReporter::toString(
               makeStoreReport(store, reduction.metrics)) +
        CsvReporter::toString(makeStoreReport(store, reduction.metrics));
}

/** A queue plan over @p config partitioned at @p grain. */
QueuePlan
planOf(const FleetConfig &config, const std::string &results_dir,
       int grain, int64_t lease_ms = 10000)
{
    const SweepSpec spec = SweepSpec::fromConfig(config);
    QueuePlan plan;
    plan.resultsDir = results_dir;
    plan.leaseMs = lease_ms;
    plan.grain = grain;
    plan.baseSeed = config.baseSeed;
    plan.seedMode = spec.seedMode;
    plan.users = config.effectiveUsers();
    plan.warmDrivers = config.warmDrivers;
    plan.checkpointEvery = 1;
    plan.devices = spec.devices;
    plan.apps = spec.apps;
    plan.schedulers = spec.schedulers;
    plan.ranges = partitionJobs(config.jobCount(), grain);
    return plan;
}

/**
 * Execute @p lease's range into @p store the way `pes_fleet work`
 * does: external-range config, per-(worker, range, epoch) part label,
 * publish fence against the queue. Returns the outcome.
 */
FleetOutcome
runLease(LeaseQueue &queue, ResultStore &store, const Lease &lease,
         const std::string &worker)
{
    FleetConfig config = configOf(queue.plan());
    config.threads = 1;
    config.checkpointEvery = queue.plan().checkpointEvery;
    config.externalRanges = {JobRange{lease.first, lease.count}};
    config.persistLabel = worker + "-r" + std::to_string(lease.seq) +
        "-e" + std::to_string(lease.epoch);
    config.resultStore = &store;
    store.setPublishFence([&queue, lease](std::string *why) {
        if (queue.stillOwned(lease))
            return true;
        if (why)
            *why = "range " + std::to_string(lease.seq) +
                " no longer owned";
        return false;
    });
    FleetRunner runner(config);
    const FleetOutcome outcome = runner.run();
    store.setPublishFence({});
    return outcome;
}

// ----------------------------------------------------- partitioning

TEST(Partition, CoversTheJobSpaceExactly)
{
    const auto ranges = partitionJobs(10, 4);
    ASSERT_EQ(ranges.size(), 3u);
    EXPECT_EQ(ranges[0].first, 0);
    EXPECT_EQ(ranges[0].count, 4);
    EXPECT_EQ(ranges[1].first, 4);
    EXPECT_EQ(ranges[1].count, 4);
    EXPECT_EQ(ranges[2].first, 8);
    EXPECT_EQ(ranges[2].count, 2);  // last range is short

    EXPECT_EQ(partitionJobs(3, 100).size(), 1u);
    EXPECT_EQ(partitionJobs(0, 4).size(), 0u);
    EXPECT_EQ(partitionJobs(4, 0).size(), 0u);
}

TEST(Partition, AlignedGrainRoundsUpToWholeCells)
{
    EXPECT_EQ(alignedGrain(1, 3), 3);
    EXPECT_EQ(alignedGrain(3, 3), 3);
    EXPECT_EQ(alignedGrain(4, 3), 6);
    EXPECT_EQ(alignedGrain(7, 1), 7);   // fresh drivers: any grain
    EXPECT_EQ(alignedGrain(0, 4), 4);
}

// ------------------------------------------------ lease state machine

TEST(LeaseQueue, CreateOpenRoundTripsThePlan)
{
    const TempDir dir("roundtrip");
    const FleetConfig config = chaosFleet();
    const QueuePlan plan =
        planOf(config, (dir.path / "store").string(), 4);
    std::string error;
    auto queue = LeaseQueue::create((dir.path / "q").string(), plan,
                                    &error);
    ASSERT_TRUE(queue.has_value()) << error;

    auto reopened = LeaseQueue::open((dir.path / "q").string(), &error);
    ASSERT_TRUE(reopened.has_value()) << error;
    EXPECT_EQ(reopened->plan().leaseMs, plan.leaseMs);
    EXPECT_EQ(reopened->plan().schedulers, plan.schedulers);
    EXPECT_EQ(reopened->plan().apps, plan.apps);
    EXPECT_EQ(reopened->plan().ranges.size(), plan.ranges.size());

    // The rebuilt config's spec matches the one the plan came from —
    // workers and the store can never disagree about sweep identity.
    EXPECT_TRUE(SweepSpec::fromConfig(configOf(reopened->plan())) ==
                SweepSpec::fromConfig(config));

    // A second create into the same directory must refuse.
    EXPECT_FALSE(
        LeaseQueue::create((dir.path / "q").string(), plan, &error)
            .has_value());
}

TEST(LeaseQueue, ClaimIsExclusiveAndFencedByEpoch)
{
    const TempDir dir("claim");
    const FleetConfig config = chaosFleet();
    std::string error;
    auto queue = LeaseQueue::create(
        (dir.path / "q").string(),
        planOf(config, (dir.path / "store").string(), 6), &error);
    ASSERT_TRUE(queue.has_value()) << error;

    std::vector<Lease> leases;
    ASSERT_TRUE(queue->loadLeases(&leases, &error)) << error;
    ASSERT_EQ(leases.size(), 2u);

    // First claim wins; a second claim of the same snapshot loses
    // without error (the O_EXCL marker arbitration).
    Lease mine;
    ASSERT_TRUE(queue->tryClaim(leases[0], "w1", 1000, &mine, &error))
        << error;
    EXPECT_EQ(mine.state, LeaseState::Leased);
    EXPECT_EQ(mine.owner, "w1");
    Lease theirs;
    error.clear();
    EXPECT_FALSE(queue->tryClaim(leases[0], "w2", 1001, &theirs,
                                 &error));
    EXPECT_TRUE(error.empty()) << error;
    EXPECT_EQ(queue->claimMarkers(), 1u);

    // Heartbeat extends while owned...
    EXPECT_TRUE(queue->stillOwned(mine));
    ASSERT_TRUE(queue->heartbeat(mine, 2000, &error)) << error;

    // ...but once the coordinator reopens (epoch bump), every verb of
    // the old holder is fenced: heartbeat, complete, stillOwned.
    Lease current;
    ASSERT_TRUE(queue->loadLease(mine.seq, &current, &error)) << error;
    ASSERT_TRUE(queue->reopen(current, &error)) << error;
    EXPECT_FALSE(queue->stillOwned(mine));
    error.clear();
    EXPECT_FALSE(queue->heartbeat(mine, 3000, &error));
    error.clear();
    EXPECT_FALSE(queue->complete(mine, &error));

    // The reopened lease is claimable again under the next epoch.
    Lease reopened;
    ASSERT_TRUE(queue->loadLease(mine.seq, &reopened, &error)) << error;
    EXPECT_EQ(reopened.state, LeaseState::Open);
    EXPECT_EQ(reopened.epoch, mine.epoch + 1);
    Lease second;
    ASSERT_TRUE(queue->tryClaim(reopened, "w2", 4000, &second, &error))
        << error;
    ASSERT_TRUE(queue->complete(second, &error)) << error;
    EXPECT_EQ(queue->claimMarkers(), 2u);
}

TEST(Coordinator, PassExpiresDeadLeasesAndWedgedClaims)
{
    const TempDir dir("expire");
    const FleetConfig config = chaosFleet();
    std::string error;
    auto queue = LeaseQueue::create(
        (dir.path / "q").string(),
        planOf(config, (dir.path / "store").string(), 4,
               /*lease_ms=*/1000),
        &error);
    ASSERT_TRUE(queue.has_value()) << error;

    std::vector<Lease> leases;
    ASSERT_TRUE(queue->loadLeases(&leases, &error)) << error;
    ASSERT_EQ(leases.size(), 3u);

    // Lease 0: claimed, then the holder "dies" (no heartbeat).
    Lease dead;
    ASSERT_TRUE(queue->tryClaim(leases[0], "dead", 1000, &dead,
                                &error))
        << error;

    // Lease 1: a wedged claim — the claimant created the marker but
    // died before writing the lease file (state still Open).
    {
        std::ofstream marker(fs::path(queue->dir()) / "claims" /
                             "range-1.epoch-0");
        marker << "wedged\n" << 1000 << "\n";
    }
    int64_t claimed_at = 0;
    ASSERT_TRUE(queue->claimPending(leases[1], &claimed_at));
    EXPECT_EQ(claimed_at, 1000);

    // Within the lease budget nothing expires...
    CoordinatorStats stats;
    const CoordinatorOptions options;
    ASSERT_TRUE(coordinatorPass(*queue, 1500, options, stats, nullptr,
                                &error))
        << error;
    EXPECT_EQ(stats.expired, 0u);
    EXPECT_EQ(stats.leased, 1u);
    EXPECT_EQ(stats.open, 2u);

    // ...past it, both the dead lease and the wedged claim reopen with
    // bumped epochs.
    ASSERT_TRUE(coordinatorPass(*queue, 2500, options, stats, nullptr,
                                &error))
        << error;
    EXPECT_EQ(stats.expired, 2u);
    EXPECT_EQ(stats.leased, 0u);
    EXPECT_EQ(stats.open, 3u);
    EXPECT_FALSE(queue->stillOwned(dead));

    Lease lease1;
    ASSERT_TRUE(queue->loadLease(1, &lease1, &error)) << error;
    EXPECT_EQ(lease1.epoch, 1u);
    EXPECT_EQ(lease1.state, LeaseState::Open);
}

TEST(Coordinator, StealsFromStragglersOnlyWithAFasterPeer)
{
    const TempDir dir("steal");
    const FleetConfig config = chaosFleet();
    std::string error;
    auto queue = LeaseQueue::create(
        (dir.path / "q").string(),
        planOf(config, (dir.path / "store").string(), 6,
               /*lease_ms=*/60000),
        &error);
    ASSERT_TRUE(queue.has_value()) << error;

    std::vector<Lease> leases;
    ASSERT_TRUE(queue->loadLeases(&leases, &error)) << error;
    Lease slow_lease;
    ASSERT_TRUE(queue->tryClaim(leases[0], "slow", 1000, &slow_lease,
                                &error))
        << error;

    CoordinatorOptions options;
    options.minStealMs = 100;
    options.stealFactor = 2.0;
    CoordinatorStats stats;

    // No published rates: never steal (nothing is known to be faster).
    ASSERT_TRUE(coordinatorPass(*queue, 50000, options, stats, nullptr,
                                &error))
        << error;
    EXPECT_EQ(stats.stolen, 0u);

    // A much faster peer exists and the lease has been held far past
    // factor x expected completion: steal.
    ASSERT_TRUE(queue->writeWorkerRate(
        WorkerRate{"slow", 2, 2000.0, 1.0, 1000}, &error))
        << error;
    ASSERT_TRUE(queue->writeWorkerRate(
        WorkerRate{"fast", 100, 2000.0, 50.0, 1000}, &error))
        << error;
    ASSERT_TRUE(coordinatorPass(*queue, 50000, options, stats, nullptr,
                                &error))
        << error;
    EXPECT_EQ(stats.stolen, 1u);
    EXPECT_FALSE(queue->stillOwned(slow_lease));

    // The fastest worker's own leases are never stolen.
    std::vector<Lease> fresh;
    ASSERT_TRUE(queue->loadLeases(&fresh, &error)) << error;
    Lease fast_lease;
    ASSERT_TRUE(queue->tryClaim(fresh[0], "fast", 51000, &fast_lease,
                                &error))
        << error;
    ASSERT_TRUE(coordinatorPass(*queue, 100000, options, stats,
                                nullptr, &error))
        << error;
    EXPECT_EQ(stats.stolen, 1u);
    EXPECT_TRUE(queue->stillOwned(fast_lease));
}

// ------------------------------------------------------- chaos sweep

/**
 * The satellite chaos test: randomized lease issue order, a lease
 * expired after its holder already persisted records (duplicate
 * re-execution), a crash between checkpoint and manifest save (orphan
 * part adopted on re-open), and a fenced zombie that must not publish
 * — the reduced report must stay byte-identical to the whole run.
 */
TEST(Coordinator, ChaoticMultiWorkerSweepMatchesWholeRunBytes)
{
    // The ground truth: the same sweep, whole, in one process.
    FleetConfig whole = chaosFleet();
    FleetRunner whole_runner(whole);
    const std::string whole_bytes =
        reportBytes(whole_runner.config(), whole_runner.run().metrics);

    for (const uint32_t chaos_seed : {1u, 2u, 3u}) {
        std::mt19937 rng(chaos_seed);
        const TempDir dir("chaos_" + std::to_string(chaos_seed));
        const std::string store_dir = (dir.path / "store").string();
        FleetConfig config = chaosFleet();
        std::string error;
        auto store = ResultStore::create(
            store_dir, SweepSpec::fromConfig(config), &error);
        ASSERT_TRUE(store.has_value()) << error;
        auto queue = LeaseQueue::create(
            (dir.path / "q").string(),
            planOf(config, store_dir, /*grain=*/3, /*lease_ms=*/1000),
            &error);
        ASSERT_TRUE(queue.has_value()) << error;

        const std::vector<std::string> workers = {"w1", "w2"};
        int64_t now = 1000;
        bool injected_death = false;
        bool injected_orphan = false;
        uint64_t expired = 0;

        for (;;) {
            std::vector<Lease> leases;
            ASSERT_TRUE(queue->loadLeases(&leases, &error)) << error;
            std::vector<const Lease *> open;
            for (const Lease &lease : leases)
                if (lease.state == LeaseState::Open)
                    open.push_back(&lease);
            if (open.empty()) {
                const bool all_done = std::all_of(
                    leases.begin(), leases.end(), [](const Lease &l) {
                        return l.state == LeaseState::Done;
                    });
                if (all_done)
                    break;
                // Something is leased but its holder is gone (the
                // injected death): let the coordinator expire it.
                now += 2000;
                CoordinatorStats stats;
                ASSERT_TRUE(coordinatorPass(*queue, now,
                                            CoordinatorOptions{}, stats,
                                            nullptr, &error))
                    << error;
                expired += stats.expired;
                continue;
            }

            // Randomized issue order and claimant.
            const Lease snapshot =
                *open[rng() % open.size()];
            const std::string &worker = workers[rng() % workers.size()];
            Lease mine;
            if (!queue->tryClaim(snapshot, worker, now, &mine, &error))
                continue;
            now += 100;

            if (!injected_death) {
                // Holder persists its whole range, then dies before
                // complete(): the range re-runs under the next epoch
                // and every one of its records becomes a duplicate.
                injected_death = true;
                const FleetOutcome outcome =
                    runLease(*queue, *store, mine, worker);
                EXPECT_TRUE(outcome.diagnostics.empty());
                continue;  // never completes
            }

            if (!injected_orphan) {
                // Crash between checkpoint and manifest save: the part
                // bytes are on disk, the manifest row is not. A fresh
                // open() must adopt it; its records then duplicate the
                // re-run. (Written directly — SessionRecords borrowed
                // from a scratch one-range run — because appendPart
                // would save the manifest row we are pretending died.)
                injected_orphan = true;
                const std::string scratch_dir =
                    (dir.path / "scratch").string();
                auto scratch = ResultStore::create(
                    scratch_dir, SweepSpec::fromConfig(config), &error);
                ASSERT_TRUE(scratch.has_value()) << error;
                const FleetOutcome outcome =
                    runLease(*queue, *scratch, mine, worker);
                EXPECT_TRUE(outcome.diagnostics.empty());
                std::vector<SessionRecord> records;
                ASSERT_TRUE(scratch->forEachRecord(
                    [&](const SessionRecord &rec) {
                        records.push_back(rec);
                        return true;
                    },
                    &error))
                    << error;
                ASSERT_FALSE(records.empty());
                ASSERT_TRUE(writeFileBytes(
                    (fs::path(store_dir) / "part-orphan.psum").string(),
                    PsumWriter::toBytes(records,
                                        {{"writer", "chaos"}}),
                    &error))
                    << error;
                continue;  // dies before complete() either way
            }

            // A healthy claim: execute and complete.
            const FleetOutcome outcome =
                runLease(*queue, *store, mine, worker);
            EXPECT_TRUE(outcome.diagnostics.empty());
            ASSERT_TRUE(queue->complete(mine, &error)) << error;
        }

        EXPECT_GE(expired, 2u) << "both injected deaths must expire";

        // A zombie whose lease moved on must be fenced out of the
        // store: its append fails and adds no rows.
        {
            std::vector<Lease> leases;
            ASSERT_TRUE(queue->loadLeases(&leases, &error)) << error;
            Lease stale = leases[0];
            stale.epoch = leases[0].epoch + 100;  // never current
            const size_t rows_before = store->parts().size();
            const FleetOutcome outcome =
                runLease(*queue, *store, stale, "zombie");
            ASSERT_FALSE(outcome.diagnostics.empty());
            EXPECT_NE(outcome.diagnostics[0].find("lease fenced"),
                      std::string::npos)
                << outcome.diagnostics[0];
            EXPECT_EQ(store->parts().size(), rows_before);
        }

        // The injected orphan is a finding until a re-open adopts it.
        {
            std::vector<StoreProblem> problems;
            EXPECT_FALSE(store->validate(problems));
            ASSERT_EQ(problems.size(), 1u);
            EXPECT_EQ(problems[0].kind,
                      IntegrityProblem::Kind::Orphaned);
        }
        auto adopted = ResultStore::open(store_dir, &error);
        ASSERT_TRUE(adopted.has_value()) << error;
        std::vector<StoreProblem> problems;
        EXPECT_TRUE(adopted->validate(problems))
            << (problems.empty() ? "" : problems[0].message);

        // The headline guarantee, under every chaos seed.
        uint64_t missing = 0;
        EXPECT_TRUE(storeCoversSweep(*adopted, &missing, &error))
            << error << " missing=" << missing;
        EXPECT_EQ(storeReportBytes(*adopted), whole_bytes);
    }
}

} // namespace
} // namespace pes
