/**
 * @file
 * Tests for the core library: EBS policy, governors, event predictor,
 * global optimizer, pending frame buffer, and the PES/Oracle drivers'
 * observable behaviour on controlled workloads.
 */

#include <gtest/gtest.h>

#include "core/ebs_policy.hh"
#include "core/hints.hh"
#include "core/ebs_scheduler.hh"
#include "core/experiment.hh"
#include "core/governors.hh"
#include "core/optimizer.hh"
#include "core/oracle_scheduler.hh"
#include "core/pes_scheduler.hh"
#include "core/pfb.hh"
#include "core/predictor.hh"
#include "core/predictor_training.hh"
#include "trace/dom_builder.hh"
#include "util/logging.hh"

namespace pes {
namespace {

class CoreFixture : public ::testing::Test
{
  protected:
    AcmpPlatform soc = AcmpPlatform::exynos5410();
    PowerModel power{soc};
    DvfsLatencyModel model{soc};
};

// ------------------------------------------------------------ EbsPolicy

TEST_F(CoreFixture, EbsChoiceMatchesBruteForce)
{
    EbsPolicy policy(soc, power);
    const Workload work{5.0, 120.0};
    for (TimeMs budget : {50.0, 120.0, 300.0, 1000.0, 5000.0}) {
        const AcmpConfig choice = policy.chooseConfigFor(work, budget);
        // Brute force the minimum-energy feasible configuration.
        int best = -1;
        EnergyMj best_energy = 0.0;
        for (int j = 0; j < soc.numConfigs(); ++j) {
            const TimeMs lat = model.latencyAt(work, j);
            if (lat > budget)
                continue;
            const EnergyMj e = energyOf(power.busyPowerAt(j), lat);
            if (best == -1 || e < best_energy) {
                best = j;
                best_energy = e;
            }
        }
        const AcmpConfig expected =
            best == -1 ? soc.maxConfig() : soc.configAt(best);
        EXPECT_EQ(choice, expected) << "budget " << budget;
    }
}

TEST_F(CoreFixture, EbsLooseBudgetPicksLittleCore)
{
    EbsPolicy policy(soc, power);
    const AcmpConfig choice =
        policy.chooseConfigFor({5.0, 120.0}, 10000.0);
    EXPECT_EQ(choice.core, CoreType::Little);
}

TEST_F(CoreFixture, EbsImpossibleBudgetFallsBackToMax)
{
    EbsPolicy policy(soc, power);
    EXPECT_EQ(policy.chooseConfigFor({50.0, 1000.0}, 1.0),
              soc.maxConfig());
}

TEST_F(CoreFixture, EbsProbesUnknownClassAtMax)
{
    EbsPolicy policy(soc, power);
    EXPECT_EQ(policy.chooseConfig(42, DomEventType::Click, 300.0),
              soc.maxConfig());
}

TEST_F(CoreFixture, EbsOnePointEstimateAfterFirstMeasurement)
{
    EbsPolicy policy(soc, power);
    const Workload truth{5.0, 120.0};
    policy.recordMeasurement(42, DomEventType::Click, soc.maxConfig(),
                             model.latency(truth, soc.maxConfig()));
    const Workload est = policy.estimateWorkload(42, DomEventType::Click);
    // One-point estimate reproduces the measured latency at the probe.
    EXPECT_NEAR(model.latency(est, soc.maxConfig()),
                model.latency(truth, soc.maxConfig()), 1e-6);
    // And the second-encounter choice is no longer the blind max probe.
    const AcmpConfig second =
        policy.chooseConfig(42, DomEventType::Click, 5000.0);
    EXPECT_NE(second, soc.maxConfig());
}

TEST_F(CoreFixture, EbsTwoPointEstimateIsExact)
{
    EbsPolicy policy(soc, power);
    const Workload truth{5.0, 120.0};
    policy.recordMeasurement(7, DomEventType::Click, soc.maxConfig(),
                             model.latency(truth, soc.maxConfig()));
    policy.recordMeasurement(7, DomEventType::Click,
                             {CoreType::Big, 1000.0},
                             model.latency(truth, {CoreType::Big, 1000.0}));
    ASSERT_TRUE(policy.hasEstimate(7));
    const Workload est = policy.estimateWorkload(7, DomEventType::Click);
    EXPECT_NEAR(est.tmemMs, truth.tmemMs, 1e-6);
    EXPECT_NEAR(est.ndep, truth.ndep, 1e-6);
}

TEST_F(CoreFixture, EbsPriorsKickInForUnseenClasses)
{
    EbsPolicy policy(soc, power);
    const Workload truth{5.0, 120.0};
    // Teach the policy one tap class fully.
    policy.recordMeasurement(1, DomEventType::Click, soc.maxConfig(),
                             model.latency(truth, soc.maxConfig()));
    policy.recordMeasurement(1, DomEventType::Click,
                             {CoreType::Big, 1000.0},
                             model.latency(truth, {CoreType::Big, 1000.0}));
    // A different tap class inherits the interaction prior.
    const Workload prior = policy.estimateWorkload(999,
                                                   DomEventType::Click);
    EXPECT_NEAR(prior.ndep, truth.ndep, 1.0);
}

TEST_F(CoreFixture, FeasibilityMarginRejectsMarginalConfigs)
{
    EbsPolicy strict(soc, power, 1.3);
    EbsPolicy paper(soc, power, 1.0);
    const Workload work{0.0, 100.0};
    // Budget exactly equal to some config's latency: the margin-free
    // policy takes it, the margined one steps up.
    const AcmpConfig cfg{CoreType::Big, 1000.0};
    const TimeMs budget = model.latency(work, cfg);
    EXPECT_EQ(paper.chooseConfigFor(work, budget), cfg);
    const AcmpConfig safer = strict.chooseConfigFor(work, budget);
    EXPECT_LT(model.latency(work, safer), budget);
}

// ------------------------------------------------------------ Optimizer

TEST_F(CoreFixture, OptimizerMeetsOutstandingDeadlines)
{
    const VsyncClock vsync;
    GlobalOptimizer optimizer(model, power, vsync);

    std::vector<PlanEventSpec> specs(3);
    specs[0].work = {5.0, 90.0};
    specs[0].qosTarget = 300.0;
    specs[0].arrival = 1000.0;
    specs[1].work = {5.0, 90.0};
    specs[1].qosTarget = 300.0;
    specs[1].arrival = 1100.0;
    specs[2].work = {0.5, 10.0};
    specs[2].qosTarget = 33.0;
    specs[2].arrival = 1200.0;

    const ScheduleSolution sol =
        optimizer.planSchedule(1000.0, soc.minConfig(), specs);
    ASSERT_TRUE(sol.feasible);
    // Finish times (relative to now=1000) stay within each deadline.
    EXPECT_LE(sol.finishTime[0], 300.0 + 1e-9);
    EXPECT_LE(sol.finishTime[2], 1200.0 + 33.0 - 1000.0 + 1e-9);
}

TEST_F(CoreFixture, OptimizerChainsPredictedDeadlines)
{
    const VsyncClock vsync;
    GlobalOptimizer optimizer(model, power, vsync);
    std::vector<PlanEventSpec> specs(2);
    specs[0].work = {5.0, 90.0};
    specs[0].qosTarget = 300.0;   // predicted, no arrival
    specs[1].work = {5.0, 90.0};
    specs[1].qosTarget = 300.0;
    const ScheduleProblem problem =
        optimizer.buildProblem(0.0, soc.minConfig(), specs);
    EXPECT_NEAR(problem.events[0].deadline, 300.0, 1e-9);
    EXPECT_NEAR(problem.events[1].deadline, 600.0, 1e-9);
}

TEST_F(CoreFixture, OptimizerExpectedArrivalRelaxesDeadline)
{
    const VsyncClock vsync;
    GlobalOptimizer optimizer(model, power, vsync);
    std::vector<PlanEventSpec> specs(1);
    specs[0].work = {5.0, 90.0};
    specs[0].qosTarget = 300.0;
    specs[0].expectedArrival = 5000.0;
    const ScheduleProblem problem =
        optimizer.buildProblem(0.0, soc.minConfig(), specs);
    EXPECT_GT(problem.events[0].deadline, 5000.0);
}

TEST_F(CoreFixture, OptimizerDeeperChainGetsCheaperConfigs)
{
    // A chain of identical taps: later slots have larger cumulative
    // budgets, so their configurations are no more power-hungry.
    const VsyncClock vsync;
    GlobalOptimizer optimizer(model, power, vsync);
    std::vector<PlanEventSpec> specs(4);
    for (auto &s : specs) {
        s.work = {5.0, 120.0};
        s.qosTarget = 300.0;
    }
    const ScheduleSolution sol =
        optimizer.planSchedule(0.0, soc.minConfig(), specs);
    ASSERT_TRUE(sol.feasible);
    EXPECT_GE(power.busyPowerAt(sol.configOf.front()),
              power.busyPowerAt(sol.configOf.back()) - 1e-9);
}

// ------------------------------------------------------------ PFB

TEST(Pfb, FifoCommitOrder)
{
    PendingFrameBuffer pfb;
    pfb.push({1, 0, {}, 10.0, 5.0, 0});
    pfb.push({2, 1, {}, 20.0, 5.0, 0});
    EXPECT_EQ(pfb.size(), 2);
    EXPECT_EQ(pfb.head()->position, 0);
    EXPECT_EQ(pfb.pop()->position, 0);
    EXPECT_EQ(pfb.pop()->position, 1);
    EXPECT_FALSE(pfb.pop().has_value());
}

TEST(Pfb, DrainReturnsEverything)
{
    PendingFrameBuffer pfb;
    pfb.push({1, 3, {}, 0.0, 0.0, 0});
    pfb.push({2, 4, {}, 0.0, 0.0, 0});
    const auto drained = pfb.drain();
    EXPECT_EQ(drained.size(), 2u);
    EXPECT_TRUE(pfb.empty());
}

TEST(Pfb, RejectsOutOfOrderPositions)
{
    PendingFrameBuffer pfb;
    pfb.push({1, 5, {}, 0.0, 0.0, 0});
    EXPECT_DEATH(pfb.push({2, 4, {}, 0.0, 0.0, 0}), "increasing");
}

// ------------------------------------------------------------ Predictor

class PredictorFixture : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        // A model that strongly predicts Load when links are visible and
        // Click otherwise.
        model.weight(static_cast<int>(DomEventType::Load), 1) = 20.0;
        model.weight(static_cast<int>(DomEventType::Load),
                     kNumFeatures) = -4.0;
        model.weight(static_cast<int>(DomEventType::Click),
                     kNumFeatures) = 1.5;
    }

    LogisticModel model;
    WebApp app = AppDomBuilder(appByName("cnn")).build();
};

TEST_F(PredictorFixture, PredictsFromLnesOnly)
{
    WebAppSession session(app);
    DomAnalyzer analyzer(session);
    FeatureWindow window;
    window.observe(DomEventType::Click, 100, 100);

    EventPredictor predictor(model);
    const auto next = predictor.predictNext(
        analyzer, session.snapshotState(), window);
    ASSERT_TRUE(next.has_value());
    // The chosen target must be in the current LNES.
    const auto lnes = analyzer.likelyNextEvents(session.snapshotState());
    const bool in_lnes = std::any_of(
        lnes.begin(), lnes.end(), [&](const CandidateEvent &c) {
            return c.node == next->node && c.type == next->type;
        });
    EXPECT_TRUE(in_lnes);
}

TEST_F(PredictorFixture, ConfidenceThresholdBoundsDegree)
{
    WebAppSession session(app);
    DomAnalyzer analyzer(session);
    FeatureWindow window;
    window.observe(DomEventType::Click, 100, 100);

    EventPredictor::Config strict;
    strict.confidenceThreshold = 0.995;
    EventPredictor::Config loose;
    loose.confidenceThreshold = 0.30;
    EventPredictor::Config paper;  // 0.70

    const auto none = EventPredictor(model, strict)
        .predictSequence(analyzer, session.snapshotState(), window);
    const auto some = EventPredictor(model, paper)
        .predictSequence(analyzer, session.snapshotState(), window);
    const auto more = EventPredictor(model, loose)
        .predictSequence(analyzer, session.snapshotState(), window);
    EXPECT_LE(none.size(), some.size());
    EXPECT_LE(some.size(), more.size());
}

TEST_F(PredictorFixture, CumulativeConfidenceRespectsThreshold)
{
    WebAppSession session(app);
    DomAnalyzer analyzer(session);
    FeatureWindow window;
    window.observe(DomEventType::Click, 100, 100);

    EventPredictor predictor(model);  // threshold 0.70
    const auto seq = predictor.predictSequence(
        analyzer, session.snapshotState(), window);
    double cumulative = 1.0;
    for (const PredictedEvent &p : seq) {
        cumulative *= p.confidence;
        EXPECT_GE(p.confidence, 0.0);
        EXPECT_LE(p.confidence, 1.0);
    }
    EXPECT_GE(cumulative, 0.70 - 1e-9);
}

TEST_F(PredictorFixture, MaxDegreeCap)
{
    WebAppSession session(app);
    DomAnalyzer analyzer(session);
    FeatureWindow window;
    window.observe(DomEventType::Click, 100, 100);

    EventPredictor::Config config;
    config.confidenceThreshold = 0.0;  // never stop on confidence
    config.maxDegree = 3;
    const auto seq = EventPredictor(model, config)
        .predictSequence(analyzer, session.snapshotState(), window);
    EXPECT_LE(seq.size(), 3u);
}

// -------------------------------------------------- End-to-end drivers

class DriverFixture : public ::testing::Test
{
  protected:
    static Experiment &
    experiment()
    {
        static Experiment exp;
        static bool trained = false;
        if (!trained) {
            setQuiet(true);
            exp.trainedModel();
            trained = true;
        }
        return exp;
    }
};

TEST_F(DriverFixture, OracleHasZeroViolations)
{
    Experiment &exp = experiment();
    for (const char *name : {"cnn", "twitter"}) {
        const AppProfile &profile = appByName(name);
        const auto driver = exp.makeScheduler(SchedulerKind::Oracle);
        const auto traces = exp.generator().evaluationSet(profile, 2);
        for (const auto &trace : traces) {
            const SimResult r = exp.runTrace(profile, trace, *driver);
            EXPECT_NEAR(r.violationRate(), 0.0, 1e-12)
                << name << " user " << trace.userSeed;
        }
    }
}

TEST_F(DriverFixture, SchedulerEnergyOrdering)
{
    // Oracle <= PES <= Interactive and EBS <= Interactive on aggregate.
    Experiment &exp = experiment();
    ResultSet rs;
    for (const char *name : {"cnn", "ebay"}) {
        const AppProfile &profile = appByName(name);
        for (SchedulerKind kind :
             {SchedulerKind::Interactive, SchedulerKind::Ebs,
              SchedulerKind::Pes, SchedulerKind::Oracle}) {
            const auto driver = exp.makeScheduler(kind);
            exp.runAppUnder(profile, *driver, rs);
        }
    }
    const auto apps = rs.apps();
    const double ebs = rs.meanNormalizedEnergy(apps, "EBS", "Interactive");
    const double pes = rs.meanNormalizedEnergy(apps, "PES", "Interactive");
    const double oracle =
        rs.meanNormalizedEnergy(apps, "Oracle", "Interactive");
    EXPECT_LT(ebs, 1.0);
    EXPECT_LT(pes, ebs);
    EXPECT_LT(oracle, pes);
}

TEST_F(DriverFixture, PesReducesViolationsVersusEbs)
{
    Experiment &exp = experiment();
    ResultSet rs;
    for (const char *name : {"cnn", "google", "twitter"}) {
        const AppProfile &profile = appByName(name);
        for (SchedulerKind kind : {SchedulerKind::Ebs, SchedulerKind::Pes}) {
            const auto driver = exp.makeScheduler(kind);
            exp.runAppUnder(profile, *driver, rs);
        }
    }
    EXPECT_LT(rs.summarizeScheduler("PES").violationRate,
              rs.summarizeScheduler("EBS").violationRate);
}

TEST_F(DriverFixture, PesPredictionAccuracyInPaperBand)
{
    Experiment &exp = experiment();
    ResultSet rs;
    for (const char *name : {"cnn", "ebay", "twitter"}) {
        const auto driver = exp.makeScheduler(SchedulerKind::Pes);
        exp.runAppUnder(appByName(name), *driver, rs);
    }
    const double acc = rs.summarizeScheduler("PES").predictionAccuracy;
    EXPECT_GT(acc, 0.80);
    EXPECT_LE(acc, 1.0);
}

TEST_F(DriverFixture, PesSpeculatesMostEvents)
{
    Experiment &exp = experiment();
    const AppProfile &profile = appByName("twitter");
    const auto driver = exp.makeScheduler(SchedulerKind::Pes);
    ResultSet rs;
    exp.runAppUnder(profile, *driver, rs);
    int speculative = 0;
    int total = 0;
    for (const SimResult &r : rs.results()) {
        for (const EventRecord &e : r.events) {
            ++total;
            speculative += e.servedSpeculatively ? 1 : 0;
        }
    }
    EXPECT_GT(static_cast<double>(speculative) / total, 0.4);
}

TEST_F(DriverFixture, PfbTraceShowsSawtooth)
{
    // Fig. 9: frames pushed then committed one by one.
    Experiment &exp = experiment();
    const AppProfile &profile = appByName("ebay");
    const auto driver = exp.makeScheduler(SchedulerKind::Pes);
    ResultSet rs;
    exp.runAppUnder(profile, *driver, rs);
    bool saw_growth = false;
    bool saw_drain = false;
    for (const SimResult &r : rs.results()) {
        for (size_t i = 1; i < r.pfbTrace.size(); ++i) {
            if (r.pfbTrace[i].pfbSize > r.pfbTrace[i - 1].pfbSize)
                saw_growth = true;
            if (r.pfbTrace[i].pfbSize < r.pfbTrace[i - 1].pfbSize)
                saw_drain = true;
        }
    }
    EXPECT_TRUE(saw_growth);
    EXPECT_TRUE(saw_drain);
}

TEST_F(DriverFixture, GovernorsAreQosAgnosticallyDifferent)
{
    // Interactive ramps faster than Ondemand: fewer violations, more
    // energy (aggregate over two bursty apps).
    Experiment &exp = experiment();
    ResultSet rs;
    for (const char *name : {"cnn", "twitter"}) {
        for (SchedulerKind kind :
             {SchedulerKind::Interactive, SchedulerKind::Ondemand}) {
            const auto driver = exp.makeScheduler(kind);
            exp.runAppUnder(appByName(name), *driver, rs);
        }
    }
    EXPECT_LE(rs.summarizeScheduler("Interactive").violationRate,
              rs.summarizeScheduler("Ondemand").violationRate + 1e-9);
    EXPECT_GE(rs.summarizeScheduler("Interactive").meanEnergy,
              rs.summarizeScheduler("Ondemand").meanEnergy);
}

TEST_F(DriverFixture, PesFallsBackAfterConsecutiveMispredicts)
{
    // With an adversarial (untrained, zero) model and strict matching,
    // speculation keeps missing; the control unit must disable it.
    Experiment &exp = experiment();
    LogisticModel zero_model;
    PesScheduler::Config config;
    config.matchPolicy = MatchPolicy::Strict;
    PesScheduler pes(zero_model, config);
    const AppProfile &profile = appByName("google");
    const auto trace = exp.generator().evaluationSet(profile, 1).front();
    const SimResult r = exp.runTrace(profile, trace, pes);
    EXPECT_TRUE(r.fellBackToReactive || r.mispredictions == 0);
    // All events still get served.
    for (const EventRecord &e : r.events)
        EXPECT_GT(e.displayed, 0.0);
}

TEST_F(DriverFixture, NetworkRequestsSuppressedDuringSpeculation)
{
    // Speculated submits are commit-gated; count them on a form app.
    Experiment &exp = experiment();
    const AppProfile &profile = appByName("amazon");
    const auto driver = exp.makeScheduler(SchedulerKind::Pes);
    ResultSet rs;
    exp.runAppUnder(profile, *driver, rs);
    int suppressed = 0;
    for (const SimResult &r : rs.results())
        suppressed += r.suppressedNetworkRequests;
    // Amazon traces contain submits only occasionally; the counter must
    // at least be consistent (non-negative and bounded by events).
    EXPECT_GE(suppressed, 0);
}

TEST_F(DriverFixture, DisabledPredictionEqualsReactiveBehavior)
{
    // enablePrediction=false turns PES into a reactive scheduler: no
    // speculative serves, no waste.
    Experiment &exp = experiment();
    PesScheduler::Config config;
    config.enablePrediction = false;
    PesScheduler pes(exp.trainedModel(), config);
    const AppProfile &profile = appByName("bbc");
    const auto trace = exp.generator().evaluationSet(profile, 1).front();
    const SimResult r = exp.runTrace(profile, trace, pes);
    EXPECT_EQ(r.predictionsMade, 0);
    EXPECT_EQ(r.wasteEnergy, 0.0);
    for (const EventRecord &e : r.events)
        EXPECT_FALSE(e.servedSpeculatively);
}


// ------------------------------------------------------------ Hints

TEST(Hints, LookupMatchingRules)
{
    PredictionHintTable table;
    PredictionHint any_click;
    any_click.trigger = DomEventType::Click;
    any_click.next = DomEventType::Scroll;
    table.add(any_click);

    PredictionHint page1_load;
    page1_load.pageId = 1;
    page1_load.trigger = DomEventType::Load;
    page1_load.next = DomEventType::Click;
    table.add(page1_load);

    // Wildcard click hint fires on any page/node.
    auto hit = table.lookup(0, DomEventType::Click, 7);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->next, DomEventType::Scroll);
    // Page-scoped load hint only on page 1.
    EXPECT_FALSE(table.lookup(0, DomEventType::Load, 0).has_value());
    EXPECT_TRUE(table.lookup(1, DomEventType::Load, 0).has_value());
}

TEST(Hints, NodeScopedHintWinsByOrder)
{
    PredictionHintTable table;
    PredictionHint specific;
    specific.trigger = DomEventType::Click;
    specific.triggerNode = 5;
    specific.next = DomEventType::Load;
    table.add(specific);
    PredictionHint generic;
    generic.trigger = DomEventType::Click;
    generic.next = DomEventType::Scroll;
    table.add(generic);

    EXPECT_EQ(table.lookup(0, DomEventType::Click, 5)->next,
              DomEventType::Load);
    EXPECT_EQ(table.lookup(0, DomEventType::Click, 6)->next,
              DomEventType::Scroll);
}

TEST(Hints, PredictorPrefersHintOverLearner)
{
    const WebApp app = AppDomBuilder(appByName("cnn")).build();
    WebAppSession session(app);
    DomAnalyzer analyzer(session);
    FeatureWindow window;
    window.observe(DomEventType::Click, 100, 100, 3);

    // A learner that would otherwise predict Click everywhere.
    LogisticModel model;
    model.weight(static_cast<int>(DomEventType::Click),
                 kNumFeatures) = 5.0;

    PredictionHintTable hints;
    PredictionHint hint;
    hint.trigger = DomEventType::Click;
    hint.next = AppDomBuilder::moveTypeFor(appByName("cnn"));
    hint.confidence = 0.99;
    hints.add(hint);

    EventPredictor::Config config;
    config.hints = &hints;
    EventPredictor predictor(model, config);
    const auto next = predictor.predictNext(
        analyzer, session.snapshotState(), window);
    ASSERT_TRUE(next.has_value());
    EXPECT_EQ(next->type, hint.next);
    EXPECT_NEAR(next->confidence, 0.99, 1e-12);

    // Without the table, the learner's majority class wins.
    const auto plain = EventPredictor(model).predictNext(
        analyzer, session.snapshotState(), window);
    ASSERT_TRUE(plain.has_value());
    EXPECT_EQ(plain->type, DomEventType::Click);
}

TEST(Hints, HintedPesRunsEndToEnd)
{
    // A correct document-level hint ("after a scroll, another scroll")
    // must not break the pipeline and keeps accuracy high on a
    // scroll-heavy app.
    Experiment exp;
    setQuiet(true);
    exp.trainedModel();
    const AppProfile &profile = appByName("twitter");

    PredictionHintTable hints;
    PredictionHint hint;
    hint.trigger = AppDomBuilder::moveTypeFor(profile);
    hint.next = hint.trigger;
    hint.confidence = 0.9;
    hints.add(hint);

    PesScheduler::Config config;
    config.predictor.hints = &hints;
    PesScheduler pes(exp.trainedModel(), config);
    const auto trace = exp.generator().evaluationSet(profile, 1).front();
    const SimResult r = exp.runTrace(profile, trace, pes);
    EXPECT_GT(r.predictionsMade, 0);
    EXPECT_GT(r.predictionAccuracy(), 0.7);
    for (const EventRecord &e : r.events)
        EXPECT_GT(e.displayed, 0.0);
}

} // namespace
} // namespace pes

