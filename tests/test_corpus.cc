/**
 * @file
 * Tests for the trace-corpus subsystem: .ptrc round-trip fidelity,
 * failure diagnostics (truncation, corruption, version skew, missing
 * files), the CorpusStore manifest, the TraceCache, deterministic
 * mutation, and the two fleet-level guarantees — corpus replay and
 * shared-trace sweeps produce byte-identical reports to per-job live
 * synthesis.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "corpus/corpus_store.hh"
#include "corpus/trace_cache.hh"
#include "corpus/trace_mutator.hh"
#include "runner/fleet_runner.hh"
#include "runner/reporters.hh"
#include "trace/generator.hh"

namespace fs = std::filesystem;

namespace pes {
namespace {

/** Unique scratch directory, removed on scope exit. */
struct TempDir
{
    explicit TempDir(const std::string &name)
        : path(fs::temp_directory_path() / ("pes_corpus_test_" + name))
    {
        fs::remove_all(path);
        fs::create_directories(path);
    }
    ~TempDir() { fs::remove_all(path); }

    std::string str() const { return path.string(); }

    fs::path path;
};

/** The shared test platform (TraceGenerator holds a pointer into it). */
const AcmpPlatform &
exynos()
{
    static const AcmpPlatform platform = AcmpPlatform::exynos5410();
    return platform;
}

InteractionTrace
makeTrace(const std::string &app = "cnn", uint64_t seed = 42)
{
    TraceGenerator generator(exynos());
    return generator.generate(appByName(app), seed);
}

TraceProvenance
exynosProvenance()
{
    TraceProvenance provenance;
    provenance.device = exynos().name();
    provenance.params = {{"source", "synthetic"}, {"note", "unit test"}};
    return provenance;
}

// --------------------------------------------------- .ptrc round trips

TEST(TraceFormat, RoundTripPreservesEveryField)
{
    const InteractionTrace trace = makeTrace();
    ASSERT_GT(trace.events.size(), 0u);
    const TraceProvenance provenance = exynosProvenance();

    TraceReader reader;
    ASSERT_TRUE(reader.openBytes(TraceWriter::toBytes(trace, provenance)))
        << reader.error();
    EXPECT_EQ(reader.header().version, kPtrcVersion);
    EXPECT_EQ(reader.header().app, trace.appName);
    EXPECT_EQ(reader.header().userSeed, trace.userSeed);
    EXPECT_EQ(reader.header().provenance.device, provenance.device);
    EXPECT_EQ(reader.header().provenance.params, provenance.params);
    EXPECT_EQ(reader.header().eventCount, trace.events.size());
    EXPECT_EQ(reader.header().eventsChecksum, traceChecksum(trace));

    const auto loaded = reader.readTrace();
    ASSERT_TRUE(loaded.has_value()) << reader.error();
    // Exact equality: every double survives as its bit pattern.
    EXPECT_TRUE(*loaded == trace);
}

TEST(TraceFormat, EmptyTraceRoundTrips)
{
    InteractionTrace trace;
    trace.appName = "cnn";
    trace.userSeed = 7;

    TraceReader reader;
    ASSERT_TRUE(
        reader.openBytes(TraceWriter::toBytes(trace, exynosProvenance())))
        << reader.error();
    EXPECT_EQ(reader.header().eventCount, 0u);
    const auto loaded = reader.readTrace();
    ASSERT_TRUE(loaded.has_value()) << reader.error();
    EXPECT_TRUE(*loaded == trace);
}

TEST(TraceFormat, TruncationFailsCleanlyAtEveryBoundary)
{
    const std::string bytes =
        TraceWriter::toBytes(makeTrace(), exynosProvenance());
    // Cut inside every section: magic, version, provenance, events
    // payload, trailing checksum.
    const size_t cuts[] = {0, 2, 5, 10, 30, bytes.size() / 2,
                           bytes.size() - 9, bytes.size() - 1};
    for (const size_t cut : cuts) {
        ASSERT_LT(cut, bytes.size());
        TraceReader reader;
        if (reader.openBytes(bytes.substr(0, cut))) {
            EXPECT_FALSE(reader.readTrace().has_value())
                << "cut at " << cut << " parsed fully";
        }
        EXPECT_FALSE(reader.error().empty()) << "cut at " << cut;
    }
}

TEST(TraceFormat, EventChecksumMismatchDetected)
{
    std::string bytes =
        TraceWriter::toBytes(makeTrace(), exynosProvenance());
    // Flip one byte inside the events payload (just before the final
    // 8-byte checksum); the header still parses, decoding must not.
    bytes[bytes.size() - 10] ^= 0x01;
    TraceReader reader;
    ASSERT_TRUE(reader.openBytes(bytes)) << reader.error();
    EXPECT_FALSE(reader.readTrace().has_value());
    EXPECT_NE(reader.error().find("checksum"), std::string::npos)
        << reader.error();
}

TEST(TraceFormat, ProvenanceChecksumMismatchDetected)
{
    std::string bytes =
        TraceWriter::toBytes(makeTrace(), exynosProvenance());
    bytes[14] ^= 0x40;  // inside the provenance payload
    TraceReader reader;
    EXPECT_FALSE(reader.openBytes(bytes));
    EXPECT_FALSE(reader.error().empty());
}

TEST(TraceFormat, VersionSkewRejectedWithDiagnostic)
{
    std::string bytes =
        TraceWriter::toBytes(makeTrace(), exynosProvenance());
    bytes[4] = 99;  // little-endian version field follows the magic
    TraceReader reader;
    EXPECT_FALSE(reader.openBytes(bytes));
    EXPECT_NE(reader.error().find("version"), std::string::npos)
        << reader.error();
}

TEST(TraceFormat, CorruptEventCountRejectedAtOpen)
{
    const std::string good =
        TraceWriter::toBytes(makeTrace(), exynosProvenance());
    // Locate the event-count field: magic + version + provLen field +
    // provenance payload + its checksum + events length field.
    uint32_t prov_len = 0;
    for (int i = 0; i < 4; ++i)
        prov_len |= static_cast<uint32_t>(
                        static_cast<uint8_t>(good[8 + i]))
            << (8 * i);
    const size_t count_pos = 4 + 4 + 4 + prov_len + 8 + 8;

    // A huge count must fail at open() with a diagnostic — not reach
    // readTrace() and drive a giant allocation.
    std::string huge = good;
    for (int i = 0; i < 8; ++i)
        huge[count_pos + static_cast<size_t>(i)] = '\x7f';
    TraceReader reader;
    EXPECT_FALSE(reader.openBytes(huge));
    EXPECT_FALSE(reader.error().empty());

    // An off-by-one count (still plausible-looking) must fail the
    // fixed-width length cross-check.
    std::string off = good;
    off[count_pos] = static_cast<char>(
        static_cast<uint8_t>(off[count_pos]) + 1);
    TraceReader reader2;
    EXPECT_FALSE(reader2.openBytes(off));
    EXPECT_NE(reader2.error().find("count"), std::string::npos)
        << reader2.error();
}

TEST(TraceFormat, BadMagicRejected)
{
    std::string bytes =
        TraceWriter::toBytes(makeTrace(), exynosProvenance());
    bytes[0] = 'X';
    TraceReader reader;
    EXPECT_FALSE(reader.openBytes(bytes));
    EXPECT_NE(reader.error().find("magic"), std::string::npos)
        << reader.error();
}

// --------------------------------------------------------- CorpusStore

TEST(CorpusStore, AddFindLoadAcrossReopen)
{
    const TempDir dir("store");
    const InteractionTrace t1 = makeTrace("cnn", 42);
    const InteractionTrace t2 = makeTrace("social_feed", 43);
    {
        std::string error;
        auto store = CorpusStore::create(dir.str(), &error);
        ASSERT_TRUE(store.has_value()) << error;
        ASSERT_TRUE(store->add(t1, exynosProvenance(), &error)) << error;
        ASSERT_TRUE(store->add(t2, exynosProvenance(), &error)) << error;
        ASSERT_TRUE(store->save(&error)) << error;
    }

    std::string error;
    const auto store = CorpusStore::open(dir.str(), &error);
    ASSERT_TRUE(store.has_value()) << error;
    ASSERT_EQ(store->entries().size(), 2u);
    // Canonical (app, device, seed) order.
    EXPECT_EQ(store->entries()[0].app, "cnn");
    EXPECT_EQ(store->entries()[1].app, "social_feed");

    const CorpusEntry *entry =
        store->find("cnn", AcmpPlatform::exynos5410().name(), 42);
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(entry->eventCount, t1.events.size());
    EXPECT_EQ(entry->checksum, traceChecksum(t1));

    const auto loaded = store->load(*entry, &error);
    ASSERT_TRUE(loaded.has_value()) << error;
    EXPECT_TRUE(*loaded == t1);

    EXPECT_EQ(store->find("cnn", "nope", 42), nullptr);
    EXPECT_EQ(store->find("cnn", entry->device, 999), nullptr);

    // Streaming iteration visits every entry in order.
    std::vector<std::string> seen;
    ASSERT_TRUE(store->forEach(
        [&](const CorpusEntry &e, const InteractionTrace &t) {
            seen.push_back(e.app);
            EXPECT_EQ(t.appName, e.app);
            return true;
        },
        &error))
        << error;
    EXPECT_EQ(seen, (std::vector<std::string>{"cnn", "social_feed"}));
}

TEST(CorpusStore, RejectsSlugCollisionsBetweenDistinctKeys)
{
    const TempDir dir("slug_collision");
    std::string error;
    auto store = CorpusStore::create(dir.str(), &error);
    ASSERT_TRUE(store.has_value()) << error;

    const InteractionTrace original = makeTrace("cnn", 42);
    ASSERT_TRUE(store->add(original, exynosProvenance(), &error))
        << error;

    // Same lossy file slug, different key: the add must fail instead
    // of silently overwriting the first recording's file.
    InteractionTrace imposter = makeTrace("cnn", 42);
    imposter.appName = "CNN";
    EXPECT_FALSE(store->add(imposter, exynosProvenance(), &error));
    EXPECT_NE(error.find("collision"), std::string::npos) << error;

    // The original recording is intact.
    const CorpusEntry *entry = store->find("cnn", exynos().name(), 42);
    ASSERT_NE(entry, nullptr);
    const auto loaded = store->load(*entry, &error);
    ASSERT_TRUE(loaded.has_value()) << error;
    EXPECT_TRUE(*loaded == original);
}

TEST(CorpusStore, ManifestReferencingMissingFileFailsCleanly)
{
    const TempDir dir("missing");
    std::string error;
    auto store = CorpusStore::create(dir.str(), &error);
    ASSERT_TRUE(store.has_value()) << error;
    ASSERT_TRUE(store->add(makeTrace(), exynosProvenance(), &error));
    ASSERT_TRUE(store->save(&error)) << error;

    fs::remove(dir.path / store->entries()[0].file);

    std::vector<std::string> problems;
    EXPECT_FALSE(store->validate(problems));
    ASSERT_EQ(problems.size(), 1u);
    EXPECT_NE(problems[0].find("missing"), std::string::npos)
        << problems[0];

    EXPECT_FALSE(store->load(store->entries()[0], &error).has_value());
    EXPECT_FALSE(error.empty());
}

TEST(CorpusStore, ValidateCatchesCorruptTraceFile)
{
    const TempDir dir("corrupt");
    std::string error;
    auto store = CorpusStore::create(dir.str(), &error);
    ASSERT_TRUE(store.has_value()) << error;
    ASSERT_TRUE(store->add(makeTrace(), exynosProvenance(), &error));
    ASSERT_TRUE(store->save(&error)) << error;

    // Flip a byte in the middle of the recorded file.
    const fs::path file = dir.path / store->entries()[0].file;
    std::fstream io(file,
                    std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(io.is_open());
    io.seekp(static_cast<std::streamoff>(fs::file_size(file) / 2));
    io.put('\xff');
    io.close();

    std::vector<std::string> problems;
    EXPECT_FALSE(store->validate(problems));
    ASSERT_GE(problems.size(), 1u);
}

TEST(CorpusStore, OpenRejectsMissingDirectoryAndManifest)
{
    std::string error;
    EXPECT_FALSE(
        CorpusStore::open("/nonexistent/corpus/dir", &error).has_value());
    EXPECT_FALSE(error.empty());

    const TempDir dir("nomanifest");
    error.clear();
    EXPECT_FALSE(CorpusStore::open(dir.str(), &error).has_value());
    EXPECT_NE(error.find("manifest"), std::string::npos) << error;
}

TEST(CorpusStore, MalformedManifestRejected)
{
    const TempDir dir("badmanifest");
    {
        std::ofstream os(dir.path / CorpusStore::kManifestName);
        os << "{\"version\": 999, \"traces\": []}";
    }
    std::string error;
    EXPECT_FALSE(CorpusStore::open(dir.str(), &error).has_value());
    EXPECT_NE(error.find("version"), std::string::npos) << error;

    {
        std::ofstream os(dir.path / CorpusStore::kManifestName);
        os << "not json at all";
    }
    error.clear();
    EXPECT_FALSE(CorpusStore::open(dir.str(), &error).has_value());
    EXPECT_FALSE(error.empty());
}

// ---------------------------------------------------------- TraceCache

TEST(TraceCache, SynthesizesOncePerKeyAndSharesPointers)
{
    TraceCache cache;
    TraceGenerator generator(exynos());
    const std::string device = exynos().name();
    const AppProfile &profile = appByName("cnn");

    const TraceHandle a = cache.getOrGenerate(device, profile, 42,
                                              generator);
    const TraceHandle b = cache.getOrGenerate(device, profile, 42,
                                              generator);
    EXPECT_EQ(a.get(), b.get());
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.size(), 1u);

    // Distinct user => distinct entry.
    cache.getOrGenerate(device, profile, 43, generator);
    EXPECT_EQ(cache.size(), 2u);

    EXPECT_NE(cache.lookup(device, "cnn", 42), nullptr);
    EXPECT_EQ(cache.lookup(device, "cnn", 999), nullptr);

    // insert() is first-insert-wins: an existing key keeps its trace
    // (handles stay valid), a fresh key is adopted and serves later
    // getOrGenerate calls as hits.
    InteractionTrace would_replace = makeTrace("cnn", 42);
    would_replace.events.clear();
    EXPECT_FALSE(cache.insert(device, std::move(would_replace)));
    EXPECT_EQ(cache.getOrGenerate(device, profile, 42, generator).get(),
              a.get());

    InteractionTrace fresh = makeTrace("cnn", 42);
    fresh.userSeed = 4242;
    EXPECT_TRUE(cache.insert(device, std::move(fresh)));
    EXPECT_NE(cache.lookup(device, "cnn", 4242), nullptr);

    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.hits(), 0u);
}

TEST(TraceCache, LruCapEvictsColdEntriesAndHandlesStayValid)
{
    TraceCache cache;
    cache.setCapacity(2, 0);
    TraceGenerator generator(exynos());
    const std::string device = exynos().name();
    const AppProfile &profile = appByName("cnn");

    const TraceHandle a = cache.getOrGenerate(device, profile, 1,
                                              generator);
    cache.getOrGenerate(device, profile, 2, generator);
    // Touch user 1 so user 2 is the LRU victim when 3 arrives.
    cache.getOrGenerate(device, profile, 1, generator);
    cache.getOrGenerate(device, profile, 3, generator);

    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.evictions(), 1u);
    EXPECT_NE(cache.lookup(device, "cnn", 1), nullptr);
    EXPECT_EQ(cache.lookup(device, "cnn", 2), nullptr);
    EXPECT_NE(cache.lookup(device, "cnn", 3), nullptr);

    // An evicted key re-materializes deterministically on re-miss.
    const TraceHandle again = cache.getOrGenerate(device, profile, 2,
                                                  generator);
    EXPECT_TRUE(*again == *cache.lookup(device, "cnn", 2));

    // The held handle survives eviction of its entry: evict user 1 by
    // loading two more users, then verify the trace is still readable.
    cache.getOrGenerate(device, profile, 4, generator);
    cache.getOrGenerate(device, profile, 5, generator);
    EXPECT_EQ(cache.lookup(device, "cnn", 1), nullptr);
    EXPECT_GT(a->events.size(), 0u);
    EXPECT_EQ(a->userSeed, 1u);

    // A byte cap evicts too (every trace is far bigger than 1 byte).
    cache.setCapacity(0, 1);
    EXPECT_EQ(cache.size(), 1u);  // newest entry is never evicted
}

// ------------------------------------------------------- TraceMutator

TEST(TraceMutator, OperatorsAreDeterministicPerSeed)
{
    const InteractionTrace trace = makeTrace("bbc", 77);
    const InteractionTrace other = makeTrace("bbc", 78);
    const TraceMutator m1(123);
    const TraceMutator m2(123);
    const TraceMutator m3(456);

    // Same seed => byte-identical outputs (the corpus reproducibility
    // guarantee), checked through the serialized form.
    const TraceProvenance prov = exynosProvenance();
    EXPECT_EQ(TraceWriter::toBytes(m1.timeScale(trace, 0.5), prov),
              TraceWriter::toBytes(m2.timeScale(trace, 0.5), prov));
    EXPECT_EQ(TraceWriter::toBytes(m1.dropEvents(trace, 0.3), prov),
              TraceWriter::toBytes(m2.dropEvents(trace, 0.3), prov));
    EXPECT_EQ(TraceWriter::toBytes(m1.injectBursts(trace, 0.4, 3), prov),
              TraceWriter::toBytes(m2.injectBursts(trace, 0.4, 3), prov));
    EXPECT_EQ(
        TraceWriter::toBytes(m1.concatenate(trace, other, 1000.0), prov),
        TraceWriter::toBytes(m2.concatenate(trace, other, 1000.0), prov));
    EXPECT_EQ(
        TraceWriter::toBytes(m1.jitterWorkloads(trace, 0.4), prov),
        TraceWriter::toBytes(m2.jitterWorkloads(trace, 0.4), prov));
    EXPECT_NE(m1.jitterWorkloads(trace, 0.4).userSeed,
              m3.jitterWorkloads(trace, 0.4).userSeed);

    // Different mutator seed => a different variant (distinct user seed
    // at minimum, so mutants never collide in a store).
    EXPECT_NE(m1.dropEvents(trace, 0.3).userSeed,
              m3.dropEvents(trace, 0.3).userSeed);
    EXPECT_NE(m1.dropEvents(trace, 0.3).events.size(),
              trace.events.size());
}

TEST(TraceMutator, OperatorInvariants)
{
    const InteractionTrace trace = makeTrace("youtube", 55);
    ASSERT_GT(trace.events.size(), 4u);
    const TraceMutator mutator(9);

    const InteractionTrace scaled = mutator.timeScale(trace, 0.5);
    ASSERT_EQ(scaled.events.size(), trace.events.size());
    EXPECT_DOUBLE_EQ(scaled.duration(), trace.duration() * 0.5);
    EXPECT_TRUE(scaled.events[1].callbackWork ==
                trace.events[1].callbackWork);
    EXPECT_NE(scaled.userSeed, trace.userSeed);

    const InteractionTrace dropped = mutator.dropEvents(trace, 0.5);
    EXPECT_LT(dropped.events.size(), trace.events.size());
    EXPECT_TRUE(dropped.events[0] == trace.events[0]);  // load kept

    const InteractionTrace bursty = mutator.injectBursts(trace, 1.0, 2);
    EXPECT_GT(bursty.events.size(), trace.events.size());
    for (size_t i = 1; i < bursty.events.size(); ++i)
        EXPECT_LE(bursty.events[i - 1].arrival, bursty.events[i].arrival);

    const InteractionTrace both =
        mutator.concatenate(trace, trace, 2500.0);
    ASSERT_EQ(both.events.size(), 2 * trace.events.size());
    const TraceEvent &first_of_second =
        both.events[trace.events.size()];
    EXPECT_DOUBLE_EQ(first_of_second.arrival,
                     trace.duration() + 2500.0 +
                         trace.events[0].arrival);
}

TEST(TraceMutator, JitterPerturbsWorkloadsOnly)
{
    const InteractionTrace trace = makeTrace("bbc", 13);
    ASSERT_GT(trace.events.size(), 2u);
    const TraceMutator mutator(21);

    const InteractionTrace jittered =
        mutator.jitterWorkloads(trace, 0.5);
    ASSERT_EQ(jittered.events.size(), trace.events.size());
    EXPECT_NE(jittered.userSeed, trace.userSeed);
    bool any_changed = false;
    for (size_t i = 0; i < trace.events.size(); ++i) {
        const TraceEvent &before = trace.events[i];
        const TraceEvent &after = jittered.events[i];
        // The timeline and event identity never move — only the
        // Eqn.-1 workload terms.
        EXPECT_EQ(after.arrival, before.arrival);
        EXPECT_EQ(after.type, before.type);
        EXPECT_EQ(after.node, before.node);
        EXPECT_EQ(after.classKey, before.classKey);
        EXPECT_EQ(after.issuesNetwork, before.issuesNetwork);
        any_changed |= after.callbackWork != before.callbackWork;
    }
    EXPECT_TRUE(any_changed);

    // Magnitude 0 is the identity on every workload bit.
    const InteractionTrace zero = mutator.jitterWorkloads(trace, 0.0);
    ASSERT_EQ(zero.events.size(), trace.events.size());
    for (size_t i = 0; i < trace.events.size(); ++i)
        EXPECT_TRUE(zero.events[i] == trace.events[i]);
}

TEST(TraceMutator, MutantsRoundTripThroughPtrc)
{
    const InteractionTrace trace = makeTrace("amazon", 91);
    const TraceMutator mutator(31337);
    const TraceProvenance prov = exynosProvenance();

    for (const InteractionTrace &mutant :
         {mutator.timeScale(trace, 1.7), mutator.dropEvents(trace, 0.25),
          mutator.injectBursts(trace, 0.5, 3),
          mutator.concatenate(trace, trace, 100.0),
          mutator.jitterWorkloads(trace, 0.6)}) {
        TraceReader reader;
        ASSERT_TRUE(reader.openBytes(TraceWriter::toBytes(mutant, prov)))
            << reader.error();
        const auto loaded = reader.readTrace();
        ASSERT_TRUE(loaded.has_value()) << reader.error();
        EXPECT_TRUE(*loaded == mutant);
    }
}

// ------------------------------------------- fleet-level byte fidelity

FleetConfig
fidelityFleet()
{
    FleetConfig config;
    config.apps = {appByName("cnn"), appByName("social_feed")};
    config.schedulers = {SchedulerKind::Interactive, SchedulerKind::Ebs};
    config.users = 2;
    config.threads = 4;
    return config;
}

std::string
reportBytes(FleetRunner &runner, const FleetOutcome &outcome)
{
    return JsonReporter::toString(
               makeFleetReport(runner.config(), outcome.metrics)) +
        CsvReporter::toString(
            makeFleetReport(runner.config(), outcome.metrics));
}

TEST(FleetCorpus, RecordedReplayIsByteIdenticalToLiveSynthesis)
{
    // Live synthesis (per-job, no sharing: the historical path).
    FleetConfig live = fidelityFleet();
    live.shareTraces = false;
    FleetRunner live_runner(live);
    const std::string live_bytes =
        reportBytes(live_runner, live_runner.run());

    // Record the same population, then replay the sweep off disk.
    const TempDir dir("fidelity");
    std::string error;
    auto store = CorpusStore::create(dir.str(), &error);
    ASSERT_TRUE(store.has_value()) << error;
    {
        TraceGenerator generator(exynos());
        TraceProvenance provenance;
        provenance.device = exynos().name();
        const FleetConfig seeds = fidelityFleet();
        for (const AppProfile &profile : seeds.apps) {
            for (int u = 0; u < seeds.users; ++u) {
                ASSERT_TRUE(store->add(
                    generator.generate(profile, fleetUserSeed(seeds, u)),
                    provenance, &error))
                    << error;
            }
        }
        ASSERT_TRUE(store->save(&error)) << error;
    }

    FleetConfig replay = fidelityFleet();
    replay.corpus = &*store;
    FleetRunner replay_runner(replay);
    const FleetOutcome outcome = replay_runner.run();
    EXPECT_EQ(outcome.tracesFromCorpus, 4u);  // 2 apps x 2 users
    EXPECT_EQ(reportBytes(replay_runner, outcome), live_bytes);
}

TEST(FleetCorpus, CappedCacheReplayReloadsFromCorpusNotSynthesis)
{
    // Record the population, then swap one recording for a mutated
    // variant under the same key: the corpus now differs from live
    // synthesis, so a post-eviction miss that wrongly re-synthesized
    // (instead of reloading the recording) would change report bytes.
    const TempDir dir("capped_replay");
    std::string error;
    auto store = CorpusStore::create(dir.str(), &error);
    ASSERT_TRUE(store.has_value()) << error;
    const FleetConfig seeds = fidelityFleet();
    {
        TraceGenerator generator(exynos());
        TraceProvenance provenance;
        provenance.device = exynos().name();
        for (const AppProfile &profile : seeds.apps) {
            for (int u = 0; u < seeds.users; ++u) {
                ASSERT_TRUE(store->add(
                    generator.generate(profile, fleetUserSeed(seeds, u)),
                    provenance, &error))
                    << error;
            }
        }
        const CorpusEntry *entry = store->find(
            seeds.apps[0].name, exynos().name(), fleetUserSeed(seeds, 0));
        ASSERT_NE(entry, nullptr);
        auto original = store->load(*entry, &error);
        ASSERT_TRUE(original.has_value()) << error;
        InteractionTrace mutant =
            TraceMutator(7).timeScale(*original, 1.3);
        mutant.userSeed = original->userSeed;  // keep the corpus key
        ASSERT_TRUE(store->add(mutant, provenance, &error)) << error;
        ASSERT_TRUE(store->save(&error)) << error;
    }

    FleetConfig uncapped = fidelityFleet();
    uncapped.corpus = &*store;
    FleetRunner uncapped_runner(uncapped);
    const std::string uncapped_bytes =
        reportBytes(uncapped_runner, uncapped_runner.run());

    FleetConfig capped = fidelityFleet();
    capped.corpus = &*store;
    capped.traceCacheCap = 1;  // 4 distinct traces: every job re-misses
    FleetRunner capped_runner(capped);
    const FleetOutcome outcome = capped_runner.run();
    EXPECT_TRUE(outcome.diagnostics.empty());
    EXPECT_GT(outcome.traceCacheEvictions, 0u);
    EXPECT_EQ(reportBytes(capped_runner, outcome), uncapped_bytes);
}

TEST(FleetCorpus, SharedTraceSweepMatchesPerJobSynthesis)
{
    FleetConfig per_job = fidelityFleet();
    per_job.shareTraces = false;
    FleetRunner per_job_runner(per_job);
    const FleetOutcome a = per_job_runner.run();
    EXPECT_EQ(a.traceCacheHits + a.traceCacheMisses, 0u);

    // Single worker makes the hit/miss split exact (multi-threaded runs
    // may double-synthesize a racing key; bytes are identical either
    // way). Comparing 1-thread-shared against 4-thread-per-job also
    // recrosses the thread-count determinism guarantee.
    FleetConfig shared = fidelityFleet();
    ASSERT_TRUE(shared.shareTraces);  // the default
    shared.threads = 1;
    FleetRunner shared_runner(shared);
    const FleetOutcome b = shared_runner.run();

    EXPECT_EQ(reportBytes(shared_runner, b),
              reportBytes(per_job_runner, a));
    EXPECT_EQ(b.traceCacheMisses, 4u);  // 2 apps x 2 users
    EXPECT_EQ(b.traceCacheHits,
              static_cast<uint64_t>(b.jobCount) - b.traceCacheMisses);
}

TEST(FleetCorpus, AutoSharingOnlyWhenItPaysAndStaysBounded)
{
    // A lone scheduler never reuses a trace: no cache traffic.
    FleetConfig lone = fidelityFleet();
    lone.schedulers = {SchedulerKind::Interactive};
    FleetRunner lone_runner(lone);
    const FleetOutcome a = lone_runner.run();
    EXPECT_EQ(a.traceCacheHits + a.traceCacheMisses, 0u);

    // Over the resident-set budget: falls back to per-job synthesis.
    FleetConfig big = fidelityFleet();
    big.maxSharedTraces = 1;
    FleetRunner big_runner(big);
    const FleetOutcome b = big_runner.run();
    EXPECT_EQ(b.traceCacheHits + b.traceCacheMisses, 0u);

    // Warm sweeps always share regardless of the budget (their
    // protocol depends on record-once replay).
    FleetConfig warm = fidelityFleet();
    warm.maxSharedTraces = 1;
    warm.warmDrivers = true;
    FleetRunner warm_runner(warm);
    const FleetOutcome c = warm_runner.run();
    EXPECT_GT(c.traceCacheHits + c.traceCacheMisses, 0u);
}

TEST(FleetCorpus, ExplicitSeedListDrivesTheUserAxis)
{
    FleetConfig config = fidelityFleet();
    config.userSeeds = {1111, 2222, 3333};
    EXPECT_EQ(config.effectiveUsers(), 3);
    const auto jobs = enumerateJobs(config);
    ASSERT_EQ(jobs.size(), 2u * 2u * 3u);
    EXPECT_EQ(jobs[0].userSeed, 1111u);
    EXPECT_EQ(jobs[1].userSeed, 2222u);
    EXPECT_EQ(jobs[2].userSeed, 3333u);
}

// --------------------------------------------------- manifest segments

/** A small corpus of @p users recorded traces for segmentation tests. */
CorpusStore
recordedCorpus(const std::string &dir, int users)
{
    std::string error;
    auto store = CorpusStore::create(dir, &error);
    EXPECT_TRUE(store.has_value()) << error;
    for (int u = 0; u < users; ++u) {
        EXPECT_TRUE(store->add(makeTrace("cnn", 1000 + u),
                               exynosProvenance(), &error))
            << error;
    }
    EXPECT_TRUE(store->save(&error)) << error;
    return std::move(*store);
}

TEST(CorpusSegments, ShardedManifestOpensAsTheWholeCorpus)
{
    const TempDir dir("segments");
    const CorpusStore whole = recordedCorpus(dir.str(), 9);
    const auto whole_entries = whole.entries();

    std::string error;
    {
        auto store = CorpusStore::open(dir.str(), &error);
        ASSERT_TRUE(store.has_value()) << error;
        ASSERT_TRUE(store->shard(4, &error)) << error;
    }
    EXPECT_FALSE(
        fs::exists(dir.path / CorpusStore::kManifestName));

    // open() discovers the complete segment set and presents the same
    // entries in the same canonical order.
    auto merged = CorpusStore::open(dir.str(), &error);
    ASSERT_TRUE(merged.has_value()) << error;
    EXPECT_EQ(merged->segmentCount(), 4);
    const auto merged_entries = merged->entries();
    ASSERT_EQ(merged_entries.size(), whole_entries.size());
    for (size_t i = 0; i < whole_entries.size(); ++i) {
        EXPECT_EQ(merged_entries[i].file, whole_entries[i].file);
        EXPECT_EQ(merged_entries[i].checksum, whole_entries[i].checksum);
    }

    // Per-segment views partition the corpus: validate clean, disjoint
    // membership, sizes summing to the whole.
    size_t total = 0;
    for (int k = 0; k < 4; ++k) {
        auto seg = CorpusStore::openSegment(dir.str(), k, 4, &error);
        ASSERT_TRUE(seg.has_value()) << error;
        std::vector<CorpusProblem> problems;
        EXPECT_TRUE(seg->validate(problems))
            << (problems.empty() ? "" : problems[0].message);
        for (const CorpusEntry &e : seg->entries())
            EXPECT_EQ(CorpusStore::segmentOf(e.userSeed, 4), k);
        total += seg->entries().size();
    }
    EXPECT_EQ(total, whole_entries.size());
}

TEST(CorpusSegments, IncompleteOrMixedSegmentSetsAreRejected)
{
    const TempDir dir("segments_bad");
    recordedCorpus(dir.str(), 6);
    std::string error;
    {
        auto store = CorpusStore::open(dir.str(), &error);
        ASSERT_TRUE(store.has_value()) << error;
        ASSERT_TRUE(store->shard(3, &error)) << error;
    }

    // Drop one segment: open must refuse rather than silently serve a
    // partial corpus.
    fs::rename(dir.path / CorpusStore::segmentManifestName(1, 3),
               dir.path / "stash.json");
    EXPECT_FALSE(CorpusStore::open(dir.str(), &error).has_value());
    EXPECT_NE(error.find("incomplete"), std::string::npos) << error;
    fs::rename(dir.path / "stash.json",
               dir.path / CorpusStore::segmentManifestName(1, 3));

    // A stray segment file from a different split is a mixed set.
    std::ofstream(dir.path / CorpusStore::segmentManifestName(0, 5))
        << "{\"version\": 1, \"traces\": []}\n";
    EXPECT_FALSE(CorpusStore::open(dir.str(), &error).has_value());
    EXPECT_NE(error.find("mixes segment sets"), std::string::npos)
        << error;
}

TEST(CorpusSegments, SegmentedReplayMatchesTheWholeManifest)
{
    const TempDir dir("segments_replay");
    std::string error;
    {
        auto store = CorpusStore::create(dir.str(), &error);
        ASSERT_TRUE(store.has_value()) << error;
        FleetConfig seeds;
        TraceGenerator generator(exynos());
        for (const char *app : {"cnn", "social_feed"}) {
            for (int u = 0; u < 4; ++u) {
                ASSERT_TRUE(store->add(
                    generator.generate(appByName(app),
                                       fleetUserSeed(seeds, u)),
                    exynosProvenance(), &error))
                    << error;
            }
        }
        ASSERT_TRUE(store->save(&error)) << error;
    }

    const auto replay_bytes = [&] {
        auto corpus = CorpusStore::open(dir.str(), &error);
        EXPECT_TRUE(corpus.has_value()) << error;
        FleetConfig config;
        config.schedulers = {SchedulerKind::Ebs};
        config.apps = {appByName("cnn"), appByName("social_feed")};
        config.users = 4;
        config.corpus = &*corpus;
        FleetRunner runner(std::move(config));
        return JsonReporter::toString(
            makeFleetReport(runner.config(), runner.run().metrics));
    };

    const std::string whole_bytes = replay_bytes();
    {
        auto store = CorpusStore::open(dir.str(), &error);
        ASSERT_TRUE(store.has_value()) << error;
        ASSERT_TRUE(store->shard(3, &error)) << error;
    }
    EXPECT_EQ(replay_bytes(), whole_bytes)
        << "sharding the manifest must not change replayed reports";
}

} // namespace
} // namespace pes
