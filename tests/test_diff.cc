/**
 * @file
 * Tests for the report-diffing subsystem and the golden-baseline
 * regression harness: cell alignment and outcome classification,
 * tolerance boundary semantics (exactly-at passes, just-over fails),
 * bit-exact mode (1-ulp drift), missing/extra cells, axis-mismatch
 * refusal, NaN/inf round-trip and diff handling, the exit-code
 * contract, fuzz-style robustness of the diff input path (truncated
 * and bit-flipped reports and stores must classify, never crash), and
 * byte-identical regeneration of the committed golden mini-sweep.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>

#include "results/report_diff.hh"
#include "results/result_format.hh"
#include "results/result_reduce.hh"
#include "results/result_store.hh"
#include "runner/fleet_config.hh"
#include "runner/fleet_runner.hh"
#include "runner/reporters.hh"
#include "trace/app_profile.hh"
#include "util/json.hh"

namespace fs = std::filesystem;

namespace pes {
namespace {

/** Unique scratch directory, removed on scope exit. */
struct TempDir
{
    explicit TempDir(const std::string &name)
        : path(fs::temp_directory_path() / ("pes_diff_test_" + name))
    {
        fs::remove_all(path);
        fs::create_directories(path);
    }
    ~TempDir() { fs::remove_all(path); }

    std::string str() const { return path.string(); }

    fs::path path;
};

void
writeFile(const fs::path &path, const std::string &bytes)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os << bytes;
    ASSERT_TRUE(os.good());
}

std::string
readFile(const fs::path &path)
{
    std::ifstream is(path, std::ios::binary);
    std::ostringstream ss;
    ss << is.rdbuf();
    return ss.str();
}

CellSummary
makeCell(const std::string &app, const std::string &scheduler,
         double energy)
{
    CellSummary c;
    c.device = "Exynos 5410";
    c.app = app;
    c.scheduler = scheduler;
    c.sessions = 3;
    c.events = 100;
    c.violations = 5;
    c.violationRate = 0.05;
    c.meanEnergyMj = energy;
    c.stddevEnergyMj = energy / 10.0;
    c.minEnergyMj = energy * 0.9;
    c.maxEnergyMj = energy * 1.1;
    c.meanBusyEnergyMj = energy * 0.7;
    c.meanIdleEnergyMj = energy * 0.3;
    c.meanOverheadEnergyMj = 1.5;
    c.meanWasteEnergyMj = 12.25;
    c.meanDurationMs = 60000.0;
    c.meanLatencyMs = 42.5;
    c.p50SessionLatencyMs = 40.0;
    c.p95SessionLatencyMs = 95.75;
    c.maxLatencyMs = 210.0;
    c.avgQueueLength = 1.25;
    c.predictionAccuracy = 0.9;
    c.mispredictsPerSession = 2.0;
    c.mispredictWasteMsPerSession = 17.5;
    c.fallbackRate = 0.0;
    return c;
}

/** A small two-app, two-scheduler report with distinct cell values. */
FleetReport
makeReport()
{
    FleetReport r;
    r.baseSeed = 42;
    r.seedMode = "fleet";
    r.warmDrivers = false;
    r.users = 3;
    r.sessions = 12;
    r.events = 400;
    r.devices = {"Exynos 5410"};
    r.apps = {"cnn", "social_feed"};
    r.schedulers = {"EBS", "Interactive"};
    r.cells.push_back(makeCell("cnn", "EBS", 1000.0));
    r.cells.push_back(makeCell("cnn", "Interactive", 1100.0));
    r.cells.push_back(makeCell("social_feed", "EBS", 500.0));
    r.cells.push_back(makeCell("social_feed", "Interactive", 525.0));
    return r;
}

// ------------------------------------------------ outcome classification

TEST(ReportDiff, SelfDiffIsIdenticalInBothModes)
{
    const FleetReport r = makeReport();
    for (const bool exact : {false, true}) {
        DiffOptions options;
        options.exact = exact;
        const DiffSummary summary = diffReports(r, r, options);
        EXPECT_TRUE(summary.comparable);
        EXPECT_TRUE(summary.clean());
        EXPECT_EQ(summary.identical, 4);
        EXPECT_EQ(summary.regressed, 0);
        EXPECT_EQ(diffExitCode(summary), 0) << "exact=" << exact;
        // Every cell is reported, auditable, with no metric deltas.
        ASSERT_EQ(summary.cells.size(), 4u);
        for (const CellDiff &cell : summary.cells) {
            EXPECT_EQ(cell.outcome, DiffOutcome::Identical);
            EXPECT_TRUE(cell.metrics.empty());
        }
    }
}

TEST(ReportDiff, ExactlyAtToleranceIsWithinJustOverIsNot)
{
    const FleetReport base = makeReport();

    // Absolute boundary: |delta| == absTolerance passes...
    FleetReport test = base;
    test.cells[0].meanEnergyMj = 1001.0;  // delta exactly 1.0
    DiffOptions options;
    options.relTolerance = 0.0;
    options.absTolerance = 1.0;
    DiffSummary at = diffReports(base, test, options);
    EXPECT_EQ(at.withinTolerance, 1);
    EXPECT_EQ(at.regressed, 0);
    EXPECT_EQ(diffExitCode(at), 0);

    // ...and the next representable delta past it fails.
    test.cells[0].meanEnergyMj = std::nextafter(
        1001.0, std::numeric_limits<double>::infinity());
    DiffSummary over = diffReports(base, test, options);
    EXPECT_EQ(over.regressed, 1);
    EXPECT_EQ(diffExitCode(over), kExitDrift);

    // Relative boundary: delta/base == relTolerance passes, just over
    // fails.
    test.cells[0].meanEnergyMj = 1010.0;  // rel delta == 10/1000
    options.absTolerance = 0.0;
    options.relTolerance = 10.0 / 1000.0;
    EXPECT_EQ(diffExitCode(diffReports(base, test, options)), 0);
    test.cells[0].meanEnergyMj = 1010.0001;
    EXPECT_EQ(diffExitCode(diffReports(base, test, options)),
              kExitDrift);
}

TEST(ReportDiff, MissingAndExtraCellsAreFlagged)
{
    const FleetReport base = makeReport();
    FleetReport test = base;
    test.cells.erase(test.cells.begin() + 1);  // drop (cnn, Interactive)

    DiffSummary summary = diffReports(base, test, DiffOptions{});
    EXPECT_EQ(summary.missing, 1);
    EXPECT_EQ(summary.identical, 3);
    EXPECT_FALSE(summary.clean());
    EXPECT_EQ(diffExitCode(summary), kExitDrift);
    ASSERT_EQ(summary.cells.size(), 4u);
    EXPECT_EQ(summary.cells[1].outcome, DiffOutcome::Missing);
    EXPECT_EQ(summary.cells[1].app, "cnn");
    EXPECT_EQ(summary.cells[1].scheduler, "Interactive");

    // The reverse direction is Extra, appended after the base cells.
    summary = diffReports(test, base, DiffOptions{});
    EXPECT_EQ(summary.extra, 1);
    EXPECT_EQ(diffExitCode(summary), kExitDrift);
    ASSERT_EQ(summary.cells.size(), 4u);
    EXPECT_EQ(summary.cells.back().outcome, DiffOutcome::Extra);
    EXPECT_EQ(summary.cells.back().scheduler, "Interactive");
}

TEST(ReportDiff, SweepMismatchesRefuseToCompare)
{
    const FleetReport base = makeReport();
    const auto expectRefused = [&](const FleetReport &test,
                                   const char *what) {
        const DiffSummary summary =
            diffReports(base, test, DiffOptions{});
        EXPECT_FALSE(summary.comparable) << what;
        EXPECT_FALSE(summary.problems.empty()) << what;
        for (const IntegrityProblem &p : summary.problems)
            EXPECT_EQ(p.kind, IntegrityProblem::Kind::Mismatch) << what;
        EXPECT_EQ(diffExitCode(summary), kExitCorrupt) << what;
        EXPECT_TRUE(summary.cells.empty()) << what;
    };

    FleetReport test = base;
    test.baseSeed = 43;
    expectRefused(test, "base seed");

    test = base;
    test.seedMode = "evaluation";
    expectRefused(test, "seed mode");

    test = base;
    test.warmDrivers = true;
    expectRefused(test, "driver mode");

    test = base;
    test.users = 4;
    expectRefused(test, "user axis");

    test = base;
    test.apps = {"cnn"};
    expectRefused(test, "app axis");

    test = base;
    test.schedulers = {"Interactive", "EBS"};  // order matters
    expectRefused(test, "scheduler order");

    // Scenario identity: a stress cell never diffs against the
    // baseline or another family/severity.
    test = base;
    test.scenario = "rage_tap_storm@0.5";
    expectRefused(test, "scenario vs baseline");
}

TEST(ReportDiff, DuplicateCellsRefuseToCompare)
{
    // A repeated (device, app, scheduler) key means the report is
    // malformed; silently keeping one copy would let a conflicting
    // duplicate pass an --exact gate clean.
    const FleetReport base = makeReport();
    FleetReport test = base;
    CellSummary dup = makeCell("cnn", "EBS", 99999.0);  // conflicts
    test.cells.push_back(dup);

    DiffOptions exact;
    exact.exact = true;
    DiffSummary summary = diffReports(base, test, exact);
    EXPECT_FALSE(summary.comparable);
    ASSERT_EQ(summary.problems.size(), 1u);
    EXPECT_NE(summary.problems[0].message.find("repeats cell"),
              std::string::npos);
    EXPECT_EQ(diffExitCode(summary), kExitCorrupt);

    // Base-side duplicates refuse too (they would be counted twice).
    summary = diffReports(test, base, exact);
    EXPECT_FALSE(summary.comparable);
    EXPECT_EQ(diffExitCode(summary), kExitCorrupt);

    // End-to-end: the same malformed report fed through a file, as a
    // CSV with a conflicting appended row.
    const TempDir dir("dupes");
    std::string csv = CsvReporter::toString(base);
    const size_t first_row = csv.find("Exynos 5410,cnn,EBS,");
    ASSERT_NE(first_row, std::string::npos);
    const size_t row_end = csv.find('\n', first_row);
    csv += csv.substr(first_row, row_end - first_row) + "9\n";
    writeFile(dir.path / "dup.csv", csv);
    const DiffInput input =
        loadDiffInput((dir.path / "dup.csv").string());
    ASSERT_TRUE(input.report.has_value());
    writeFile(dir.path / "ok.csv", CsvReporter::toString(base));
    const DiffInput ok = loadDiffInput((dir.path / "ok.csv").string());
    ASSERT_TRUE(ok.report.has_value());
    EXPECT_EQ(diffExitCode(diffReports(*ok.report, *input.report,
                                       exact)),
              kExitCorrupt);
}

TEST(ReportDiff, UnknownMetricFilterRefusesToCompare)
{
    DiffOptions options;
    options.metrics = {"mean_energy_mj", "no_such_metric"};
    const DiffSummary summary =
        diffReports(makeReport(), makeReport(), options);
    EXPECT_FALSE(summary.comparable);
    ASSERT_EQ(summary.problems.size(), 1u);
    EXPECT_NE(summary.problems[0].message.find("no_such_metric"),
              std::string::npos);
    EXPECT_EQ(diffExitCode(summary), kExitCorrupt);
}

TEST(ReportDiff, MetricFilterLimitsTheComparison)
{
    const FleetReport base = makeReport();
    FleetReport test = base;
    test.cells[0].meanEnergyMj = 2000.0;  // gross energy drift

    DiffOptions options;
    options.metrics = {"p95_session_latency_ms"};
    EXPECT_EQ(diffExitCode(diffReports(base, test, options)), 0);

    options.metrics = {"mean_energy_mj"};
    const DiffSummary summary = diffReports(base, test, options);
    EXPECT_EQ(diffExitCode(summary), kExitDrift);
    ASSERT_EQ(summary.cells[0].metrics.size(), 1u);
    EXPECT_EQ(summary.cells[0].metrics[0].metric, "mean_energy_mj");
}

TEST(ReportDiff, ExactModeCatchesOneUlpDrift)
{
    const FleetReport base = makeReport();
    FleetReport test = base;
    test.cells[2].p95SessionLatencyMs = std::nextafter(
        base.cells[2].p95SessionLatencyMs,
        std::numeric_limits<double>::infinity());

    // Noise-tolerant mode calls 1 ulp noise...
    EXPECT_EQ(diffExitCode(diffReports(base, test, DiffOptions{})), 0);

    // ...exact mode calls it a determinism failure and names it.
    DiffOptions exact;
    exact.exact = true;
    const DiffSummary summary = diffReports(base, test, exact);
    EXPECT_EQ(summary.regressed, 1);
    EXPECT_EQ(diffExitCode(summary), kExitDrift);
    ASSERT_EQ(summary.cells[2].metrics.size(), 1u);
    EXPECT_EQ(summary.cells[2].metrics[0].metric,
              "p95_session_latency_ms");
    EXPECT_EQ(summary.cells[2].metrics[0].outcome,
              DiffOutcome::Regressed);
}

TEST(ReportDiff, DirectionsClassifyImprovedVsRegressed)
{
    EXPECT_EQ(metricDirection("mean_energy_mj"),
              MetricDirection::LowerIsBetter);
    EXPECT_EQ(metricDirection("prediction_accuracy"),
              MetricDirection::HigherIsBetter);
    EXPECT_EQ(metricDirection("sessions"), MetricDirection::Structural);
    EXPECT_EQ(metricDirection("events"), MetricDirection::Structural);

    const FleetReport base = makeReport();

    // Energy dropped 10%: better, but still drift (stale baseline).
    FleetReport test = base;
    test.cells[0].meanEnergyMj = 900.0;
    DiffOptions energy_only;
    energy_only.metrics = {"mean_energy_mj"};
    DiffSummary summary = diffReports(base, test, energy_only);
    EXPECT_EQ(summary.improved, 1);
    EXPECT_EQ(summary.regressed, 0);
    EXPECT_EQ(diffExitCode(summary), kExitDrift);

    // Prediction accuracy dropped: worse.
    test = base;
    test.cells[0].predictionAccuracy = 0.5;
    DiffOptions accuracy_only;
    accuracy_only.metrics = {"prediction_accuracy"};
    summary = diffReports(base, test, accuracy_only);
    EXPECT_EQ(summary.regressed, 1);

    // A session-count change is structural: never an "improvement",
    // whichever way it moves.
    test = base;
    test.cells[0].sessions = 4;
    DiffOptions sessions_only;
    sessions_only.metrics = {"sessions"};
    summary = diffReports(base, test, sessions_only);
    EXPECT_EQ(summary.regressed, 1);
    EXPECT_EQ(summary.improved, 0);
}

TEST(ReportDiff, NanCellsAreNotMisclassified)
{
    const double nan = std::numeric_limits<double>::quiet_NaN();

    // NaN on both sides is identical — not drift — in both modes.
    FleetReport base = makeReport();
    base.cells[0].predictionAccuracy = nan;
    FleetReport test = base;
    test.cells[0].predictionAccuracy = std::nan("0x7ff");  // payload noise
    for (const bool exact : {false, true}) {
        DiffOptions options;
        options.exact = exact;
        const DiffSummary summary = diffReports(base, test, options);
        EXPECT_EQ(summary.identical, 4) << "exact=" << exact;
        EXPECT_EQ(diffExitCode(summary), 0) << "exact=" << exact;
    }

    // NaN against a finite value can never be "within tolerance".
    test.cells[0].predictionAccuracy = 0.9;
    const DiffSummary summary = diffReports(base, test, DiffOptions{});
    EXPECT_EQ(summary.regressed, 1);
    ASSERT_EQ(summary.cells[0].metrics.size(), 1u);
    EXPECT_TRUE(std::isnan(summary.cells[0].metrics[0].absDelta));
    EXPECT_EQ(diffExitCode(summary), kExitDrift);
}

// ------------------------------------------------- NaN/inf round trips

TEST(ReportDiff, NonFiniteValuesRoundTripThroughJsonAndCsv)
{
    FleetReport report = makeReport();
    report.cells[0].predictionAccuracy =
        std::numeric_limits<double>::quiet_NaN();
    report.cells[1].maxLatencyMs =
        std::numeric_limits<double>::infinity();
    report.cells[2].meanWasteEnergyMj =
        -std::numeric_limits<double>::infinity();

    // JSON: the document must stay parseable and decode the same
    // non-finite values (not 0.0, not a parse failure).
    const std::string json = JsonReporter::toString(report);
    EXPECT_NE(json.find("\"NaN\""), std::string::npos);
    EXPECT_NE(json.find("\"Infinity\""), std::string::npos);
    EXPECT_NE(json.find("\"-Infinity\""), std::string::npos);
    const auto parsed = JsonReporter::parse(json);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_TRUE(std::isnan(parsed->cells[0].predictionAccuracy));
    EXPECT_TRUE(std::isinf(parsed->cells[1].maxLatencyMs));
    EXPECT_GT(parsed->cells[1].maxLatencyMs, 0.0);
    EXPECT_TRUE(std::isinf(parsed->cells[2].meanWasteEnergyMj));
    EXPECT_LT(parsed->cells[2].meanWasteEnergyMj, 0.0);

    // CSV: bare strtod-parseable tokens round-trip the same way.
    const std::string csv = CsvReporter::toString(report);
    const auto csv_report = CsvReporter::parseReport(csv);
    ASSERT_TRUE(csv_report.has_value());
    EXPECT_TRUE(std::isnan(csv_report->cells[0].predictionAccuracy));
    EXPECT_TRUE(std::isinf(csv_report->cells[1].maxLatencyMs));
    EXPECT_LT(csv_report->cells[2].meanWasteEnergyMj, 0.0);

    // And a self-diff of the round-tripped reports is clean: NaN cells
    // must not read as drift.
    EXPECT_EQ(diffExitCode(diffReports(*parsed, *csv_report,
                                       DiffOptions{})),
              0);
}

TEST(ReportDiff, CsvAndJsonOfTheSameRunDiffIdentically)
{
    // Both sinks format numbers identically, so parsing the two files
    // of one run must produce bit-equal metric values.
    const FleetReport report = makeReport();
    const auto from_json = JsonReporter::parse(
        JsonReporter::toString(report));
    const auto from_csv = CsvReporter::parseReport(
        CsvReporter::toString(report));
    ASSERT_TRUE(from_json.has_value());
    ASSERT_TRUE(from_csv.has_value());
    DiffOptions exact;
    exact.exact = true;
    const DiffSummary summary =
        diffReports(*from_json, *from_csv, exact);
    EXPECT_TRUE(summary.comparable);
    EXPECT_EQ(summary.identical, 4);
    EXPECT_EQ(diffExitCode(summary), 0);
}

// ------------------------------------------------------ diff inputs

TEST(ReportDiff, ExitCodesClassifyInputProblems)
{
    const TempDir dir("inputs");

    // Missing input -> 3.
    const DiffInput missing =
        loadDiffInput((dir.path / "nope.json").string());
    EXPECT_FALSE(missing.report.has_value());
    ASSERT_EQ(missing.problems.size(), 1u);
    EXPECT_EQ(missing.problems[0].kind,
              IntegrityProblem::Kind::MissingFile);
    EXPECT_EQ(integrityExitCode(missing.problems), kExitMissing);

    // Unparseable input -> 4.
    writeFile(dir.path / "garbage.json", "this is not a report");
    const DiffInput corrupt =
        loadDiffInput((dir.path / "garbage.json").string());
    EXPECT_FALSE(corrupt.report.has_value());
    ASSERT_EQ(corrupt.problems.size(), 1u);
    EXPECT_EQ(corrupt.problems[0].kind,
              IntegrityProblem::Kind::Corrupt);
    EXPECT_EQ(integrityExitCode(corrupt.problems), kExitCorrupt);

    // Valid JSON and CSV reports load.
    const FleetReport report = makeReport();
    writeFile(dir.path / "ok.json", JsonReporter::toString(report));
    writeFile(dir.path / "ok.csv", CsvReporter::toString(report));
    EXPECT_TRUE(loadDiffInput((dir.path / "ok.json").string())
                    .report.has_value());
    EXPECT_TRUE(loadDiffInput((dir.path / "ok.csv").string())
                    .report.has_value());
}

/** A store whose records belong to their sweep (seeds re-derived). */
std::optional<ResultStore>
makeCleanStore(const std::string &dir)
{
    SweepSpec sweep;
    sweep.baseSeed = FleetConfig::kDefaultBaseSeed;
    sweep.seedMode = "fleet";
    sweep.users = 2;
    sweep.devices = {"Exynos 5410"};
    sweep.apps = {"cnn"};
    sweep.schedulers = {"EBS", "Interactive"};

    FleetConfig seeds;
    std::vector<SessionRecord> records;
    for (const char *scheduler : {"EBS", "Interactive"}) {
        for (uint32_t user = 0; user < 2; ++user) {
            SessionRecord rec;
            rec.device = "Exynos 5410";
            rec.app = "cnn";
            rec.scheduler = scheduler;
            rec.userIndex = user;
            rec.userSeed =
                fleetUserSeed(seeds, static_cast<int>(user));
            rec.stats.events = 50 + static_cast<int>(user);
            rec.stats.violations = 2;
            rec.stats.totalEnergyMj = 1234.5678901234567 + user;
            rec.stats.durationMs = 60000.25;
            rec.stats.meanLatencyMs = 41.999999999999993;
            rec.stats.p95LatencyMs = 97.75;
            rec.stats.maxLatencyMs = 203.0;
            rec.stats.avgQueueLength = 1.5;
            records.push_back(std::move(rec));
        }
    }
    std::string error;
    auto store = ResultStore::create(dir, sweep, &error);
    if (!store)
        return std::nullopt;
    if (!store->appendPart(records, "s0", {{"writer", "test_diff"}},
                           &error))
        return std::nullopt;
    return store;
}

TEST(ReportDiff, StoreInputsDiffLikeReports)
{
    const TempDir dir("stores");
    ASSERT_TRUE(makeCleanStore((dir.path / "a").string()).has_value());
    ASSERT_TRUE(makeCleanStore((dir.path / "b").string()).has_value());

    // Store vs store: bit-exact clean (the determinism gate).
    const DiffInput a = loadDiffInput((dir.path / "a").string());
    const DiffInput b = loadDiffInput((dir.path / "b").string());
    ASSERT_TRUE(a.report.has_value())
        << (a.problems.empty() ? "" : a.problems[0].message);
    ASSERT_TRUE(b.report.has_value());
    DiffOptions exact;
    exact.exact = true;
    EXPECT_EQ(diffExitCode(diffReports(*a.report, *b.report, exact)), 0);

    // Store vs its own serialized report: %.10g formatting rounds the
    // stored full-precision doubles, so exact mode is for same-kind
    // inputs — but the default noise band must call this clean.
    writeFile(dir.path / "a.json", JsonReporter::toString(*a.report));
    const DiffInput file = loadDiffInput((dir.path / "a.json").string());
    ASSERT_TRUE(file.report.has_value());
    const DiffSummary summary =
        diffReports(*a.report, *file.report, DiffOptions{});
    EXPECT_TRUE(summary.comparable);
    EXPECT_EQ(diffExitCode(summary), 0);
}

// ------------------------------------------------- fuzz-style robustness

TEST(ReportDiff, TruncatedAndBitFlippedReportsClassifyNeverCrash)
{
    const TempDir dir("fuzz_report");
    const std::string json = JsonReporter::toString(makeReport());
    const fs::path target = dir.path / "input.json";

    // Every truncation point (section boundaries included) must yield
    // either a loaded report or a classified problem.
    for (size_t cut = 0; cut < json.size(); cut += 3) {
        writeFile(target, json.substr(0, cut));
        const DiffInput input = loadDiffInput(target.string());
        EXPECT_NE(input.report.has_value(), !input.problems.empty())
            << "cut at " << cut;
        if (!input.report) {
            EXPECT_EQ(input.problems[0].kind,
                      IntegrityProblem::Kind::Corrupt)
                << "cut at " << cut;
        }
    }

    // Bit flips: may still parse (a digit became another digit) or
    // must classify as corrupt — never crash, never half-load.
    for (size_t pos = 0; pos < json.size(); pos += 7) {
        std::string mutated = json;
        mutated[pos] ^= 0x20;
        writeFile(target, mutated);
        const DiffInput input = loadDiffInput(target.string());
        EXPECT_NE(input.report.has_value(), !input.problems.empty())
            << "flip at " << pos;
    }
}

TEST(ReportDiff, CorruptStoresClassifyNeverCrash)
{
    const TempDir dir("fuzz_store");
    const std::string store_dir = (dir.path / "store").string();
    ASSERT_TRUE(makeCleanStore(store_dir).has_value());
    const fs::path part = fs::path(store_dir) / "part-s0-0.psum";
    const std::string part_bytes = readFile(part);
    ASSERT_FALSE(part_bytes.empty());

    // Truncate the part at every section boundary (and inside each).
    const size_t cuts[] = {0, 2, 5, 10, 30, part_bytes.size() / 2,
                           part_bytes.size() - 9,
                           part_bytes.size() - 1};
    for (const size_t cut : cuts) {
        ASSERT_LT(cut, part_bytes.size());
        writeFile(part, part_bytes.substr(0, cut));
        const DiffInput input = loadDiffInput(store_dir);
        EXPECT_FALSE(input.report.has_value()) << "cut at " << cut;
        EXPECT_FALSE(input.problems.empty()) << "cut at " << cut;
        for (const IntegrityProblem &p : input.problems) {
            EXPECT_NE(p.kind, IntegrityProblem::Kind::MissingFile)
                << "cut at " << cut;
        }
    }

    // Bit-flip every 9th byte: record-count, checksum and payload
    // corruption must all classify (validate catches the mismatch
    // against the manifest row).
    for (size_t pos = 0; pos < part_bytes.size(); pos += 9) {
        std::string mutated = part_bytes;
        mutated[pos] ^= 0x11;
        writeFile(part, mutated);
        const DiffInput input = loadDiffInput(store_dir);
        EXPECT_FALSE(input.report.has_value()) << "flip at " << pos;
        EXPECT_FALSE(input.problems.empty()) << "flip at " << pos;
    }
    writeFile(part, part_bytes);

    // A deleted part is a missing-file finding (exit 3)...
    fs::remove(part);
    DiffInput input = loadDiffInput(store_dir);
    EXPECT_FALSE(input.report.has_value());
    ASSERT_FALSE(input.problems.empty());
    EXPECT_EQ(integrityExitCode(input.problems), kExitMissing);
    writeFile(part, part_bytes);

    // ...and a torn manifest is corrupt (exit 4).
    const fs::path manifest =
        fs::path(store_dir) / ResultStore::kManifestName;
    const std::string manifest_bytes = readFile(manifest);
    writeFile(manifest, manifest_bytes.substr(0, 20));
    input = loadDiffInput(store_dir);
    EXPECT_FALSE(input.report.has_value());
    ASSERT_FALSE(input.problems.empty());
    EXPECT_EQ(integrityExitCode(input.problems), kExitCorrupt);
}

// ----------------------------------------------- machine-readable output

TEST(ReportDiff, DiffJsonIsParseableAndNamesTheDrift)
{
    const FleetReport base = makeReport();
    FleetReport test = base;
    test.cells[0].meanEnergyMj = 2000.0;
    test.cells.pop_back();  // one missing cell too

    DiffOptions options;
    const DiffSummary summary = diffReports(base, test, options);
    std::ostringstream ss;
    writeDiffJson(summary, options, ss);
    const auto parsed = parseJson(ss.str());
    ASSERT_TRUE(parsed.has_value()) << ss.str();

    const JsonValue *exit_code = parsed->find("exit_code");
    ASSERT_NE(exit_code, nullptr);
    EXPECT_EQ(static_cast<int>(exit_code->number()), kExitDrift);
    const JsonValue *counts = parsed->find("summary");
    ASSERT_NE(counts, nullptr);
    EXPECT_EQ(static_cast<int>(counts->find("regressed")->number()), 1);
    EXPECT_EQ(static_cast<int>(counts->find("missing")->number()), 1);
    const JsonValue *cells = parsed->find("cells");
    ASSERT_NE(cells, nullptr);
    ASSERT_EQ(cells->arr.size(), 2u);  // the drifted + the missing cell
    EXPECT_EQ(cells->arr[0].find("outcome")->str, "regressed");
    EXPECT_EQ(cells->arr[0].find("metrics")->arr[0].find("metric")->str,
              "mean_energy_mj");
    EXPECT_EQ(cells->arr[1].find("outcome")->str, "missing");
}

// --------------------------------------------------- golden baseline

/** The committed mini-sweep, exactly as tools/regen_golden.sh runs it
 *  (keep the two in sync). */
FleetConfig
goldenConfig()
{
    FleetConfig config;
    config.schedulers = {SchedulerKind::Ebs, SchedulerKind::Interactive};
    config.apps = {appByName("cnn"), appByName("social_feed")};
    config.users = 3;
    config.threads = 4;
    config.baseSeed = 0xf1ee7;
    return config;
}

TEST(GoldenBaseline, RegenerationIsByteIdentical)
{
    FleetRunner runner(goldenConfig());
    const FleetOutcome outcome = runner.run();
    const FleetReport report =
        makeFleetReport(runner.config(), outcome.metrics);

    const std::string golden_json =
        readFile(PES_SOURCE_DIR "/tests/data/golden/mini_sweep.json");
    const std::string golden_csv =
        readFile(PES_SOURCE_DIR "/tests/data/golden/mini_sweep.csv");
    ASSERT_FALSE(golden_json.empty())
        << "missing committed golden baseline; run "
           "tools/regen_golden.sh";
    EXPECT_EQ(JsonReporter::toString(report), golden_json)
        << "mini-sweep output changed; if intentional, regenerate via "
           "`cmake --build build --target regen-golden` and commit";
    EXPECT_EQ(CsvReporter::toString(report), golden_csv);
}

TEST(GoldenBaseline, FreshRunDiffsCleanAgainstCommittedBaseline)
{
    FleetRunner runner(goldenConfig());
    const FleetOutcome outcome = runner.run();
    const FleetReport fresh =
        makeFleetReport(runner.config(), outcome.metrics);

    const DiffInput golden = loadDiffInput(
        PES_SOURCE_DIR "/tests/data/golden/mini_sweep.json");
    ASSERT_TRUE(golden.report.has_value());

    // The in-memory fresh report vs the parsed golden file: the golden
    // side went through %.10g, so gate with the noise band here; the
    // CI byte-exact gate re-serializes before diffing.
    DiffSummary summary =
        diffReports(*golden.report, fresh, DiffOptions{});
    EXPECT_TRUE(summary.comparable);
    EXPECT_EQ(diffExitCode(summary), 0);

    // Round-tripping the fresh report through the serializer makes the
    // comparison bit-exact — byte-identical files, identical cells.
    const auto fresh_parsed =
        JsonReporter::parse(JsonReporter::toString(fresh));
    ASSERT_TRUE(fresh_parsed.has_value());
    DiffOptions exact;
    exact.exact = true;
    summary = diffReports(*golden.report, *fresh_parsed, exact);
    EXPECT_EQ(summary.identical,
              static_cast<int>(golden.report->cells.size()));
    EXPECT_EQ(diffExitCode(summary), 0);
}

} // namespace
} // namespace pes
