/**
 * @file
 * Tests for the simulator hot path: reusable per-worker engines and
 * pooled scheduler drivers (byte-identical to construct-per-job), the
 * stats-only fast path (bit-identical to reducing full results),
 * single-flight trace synthesis (duplicate_synthesis pinned to 0), and
 * engine reuse across run() calls (no state leaks between sessions).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/ebs_scheduler.hh"
#include "corpus/corpus_store.hh"
#include "corpus/trace_cache.hh"
#include "runner/fleet_config.hh"
#include "runner/fleet_runner.hh"
#include "runner/reporters.hh"
#include "sim/runtime_simulator.hh"
#include "trace/generator.hh"

namespace pes {
namespace {

namespace fs = std::filesystem;

const AcmpPlatform &
exynos()
{
    static const AcmpPlatform platform = AcmpPlatform::exynos5410();
    return platform;
}

/**
 * PES included deliberately: it is the only scheduler that exercises
 * speculation (the spec-frame arena) and carries warm state across a
 * pooled driver's resetFresh().
 */
FleetConfig
hotpathFleet()
{
    FleetConfig config;
    config.apps = {appByName("cnn"), appByName("social_feed")};
    config.schedulers = {SchedulerKind::Interactive, SchedulerKind::Ebs,
                         SchedulerKind::Pes};
    config.users = 2;
    return config;
}

std::string
runToBytes(FleetConfig config)
{
    FleetRunner runner(std::move(config));
    const FleetOutcome outcome = runner.run();
    const FleetReport report =
        makeFleetReport(runner.config(), outcome.metrics);
    return JsonReporter::toString(report) + CsvReporter::toString(report);
}

// --------------------------------------- reused engines, pooled drivers

TEST(HotPath, ReusedEnginesMatchConstructPerJobByteForByte)
{
    for (const int threads : {1, 8}) {
        FleetConfig reused = hotpathFleet();
        reused.threads = threads;
        ASSERT_TRUE(reused.reuseEngines);  // the default IS the fast path

        FleetConfig fresh = hotpathFleet();
        fresh.threads = threads;
        fresh.reuseEngines = false;

        EXPECT_EQ(runToBytes(reused), runToBytes(fresh))
            << "threads=" << threads;
    }
}

TEST(HotPath, StatsOnlyFastPathMatchesCollectedResults)
{
    for (const int threads : {1, 8}) {
        FleetConfig stats_only = hotpathFleet();
        stats_only.threads = threads;
        ASSERT_FALSE(stats_only.collectResults);  // default: fast path on

        FleetConfig collected = hotpathFleet();
        collected.threads = threads;
        collected.collectResults = true;

        EXPECT_EQ(runToBytes(stats_only), runToBytes(collected))
            << "threads=" << threads;
    }
}

TEST(HotPath, CorpusReplayByteIdenticalAcrossEngineModes)
{
    // Record the population once, then replay it with reused engines,
    // per-job engines, and the stats-only path: all four reports must
    // match byte for byte (live synthesis vs corpus replay is covered
    // by test_corpus; this pins the hot-path knobs on the replay path).
    const fs::path dir =
        fs::temp_directory_path() / "pes_hotpath_corpus";
    fs::remove_all(dir);
    std::string error;
    auto store = CorpusStore::create(dir.string(), &error);
    ASSERT_TRUE(store.has_value()) << error;
    {
        TraceGenerator generator(exynos());
        TraceProvenance provenance;
        provenance.device = exynos().name();
        const FleetConfig seeds = hotpathFleet();
        for (const AppProfile &profile : seeds.apps) {
            for (int u = 0; u < seeds.users; ++u) {
                ASSERT_TRUE(store->add(
                    generator.generate(profile, fleetUserSeed(seeds, u)),
                    provenance, &error))
                    << error;
            }
        }
        ASSERT_TRUE(store->save(&error)) << error;
    }

    FleetConfig replay = hotpathFleet();
    replay.threads = 4;
    replay.corpus = &*store;
    const std::string reused_bytes = runToBytes(replay);

    FleetConfig per_job = replay;
    per_job.reuseEngines = false;
    EXPECT_EQ(runToBytes(per_job), reused_bytes);

    FleetConfig collected = replay;
    collected.collectResults = true;
    EXPECT_EQ(runToBytes(collected), reused_bytes);

    fs::remove_all(dir);
}

// ------------------------------------------- single-flight trace cache

TEST(HotPath, SingleFlightNeverDuplicatesSynthesis)
{
    // Hammer one key from many threads at once. The latch protocol
    // guarantees exactly one loader invocation: everyone else waits and
    // adopts, so duplicate_synthesis stays 0 BY CONSTRUCTION, not by
    // lucky timing (the sleep inside the loader widens the race window
    // that the pre-single-flight cache would lose).
    constexpr int kThreads = 16;
    TraceCache cache;
    std::atomic<int> loads{0};
    const auto loader = [&] {
        loads.fetch_add(1);
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        InteractionTrace trace;
        trace.appName = "cnn";
        trace.userSeed = 7;
        return trace;
    };

    std::vector<TraceHandle> handles(kThreads);
    {
        std::vector<std::thread> threads;
        threads.reserve(kThreads);
        for (int i = 0; i < kThreads; ++i) {
            threads.emplace_back([&, i] {
                handles[static_cast<size_t>(i)] =
                    cache.getOrLoad("exynos5410", "cnn", 7, loader);
            });
        }
        for (std::thread &t : threads)
            t.join();
    }

    EXPECT_EQ(loads.load(), 1);
    EXPECT_EQ(cache.duplicateSynthesis(), 0u);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits(), static_cast<uint64_t>(kThreads - 1));
    for (const TraceHandle &h : handles) {
        ASSERT_TRUE(h);
        EXPECT_EQ(h.get(), handles[0].get());  // one shared trace
    }
}

TEST(HotPath, SingleFlightLoaderFailurePropagatesToEveryWaiter)
{
    // A throwing loader must fail the winner AND every waiter parked on
    // the latch (nobody hangs), and must not poison the key: the next
    // getOrLoad retries the loader.
    constexpr int kThreads = 8;
    TraceCache cache;
    std::atomic<int> loads{0};
    std::atomic<int> failures{0};
    {
        std::vector<std::thread> threads;
        threads.reserve(kThreads);
        for (int i = 0; i < kThreads; ++i) {
            threads.emplace_back([&] {
                try {
                    cache.getOrLoad("exynos5410", "cnn", 9, [&] {
                        loads.fetch_add(1);
                        std::this_thread::sleep_for(
                            std::chrono::milliseconds(10));
                        throw std::runtime_error("synthetic load failure");
                        return InteractionTrace{};
                    });
                } catch (const std::runtime_error &) {
                    failures.fetch_add(1);
                }
            });
        }
        for (std::thread &t : threads)
            t.join();
    }
    // Every thread fails (winners rethrow their own exception, waiters
    // the latched one); late arrivals may retry the erased key, so the
    // loader can run more than once — but never concurrently wasted.
    EXPECT_EQ(failures.load(), kThreads);
    EXPECT_GE(loads.load(), 1);
    EXPECT_EQ(cache.size(), 0u);

    const TraceHandle retried =
        cache.getOrLoad("exynos5410", "cnn", 9, [&] {
            InteractionTrace trace;
            trace.appName = "cnn";
            trace.userSeed = 9;
            return trace;
        });
    ASSERT_TRUE(retried);
    EXPECT_EQ(cache.size(), 1u);
}

// --------------------------------------------------- engine reusability

void
expectSameResult(const SimResult &a, const SimResult &b)
{
    ASSERT_EQ(a.events.size(), b.events.size());
    for (size_t i = 0; i < a.events.size(); ++i) {
        const EventRecord &x = a.events[i];
        const EventRecord &y = b.events[i];
        EXPECT_EQ(x.traceIndex, y.traceIndex) << "event " << i;
        EXPECT_EQ(x.type, y.type) << "event " << i;
        EXPECT_EQ(x.arrival, y.arrival) << "event " << i;
        EXPECT_EQ(x.frameReady, y.frameReady) << "event " << i;
        EXPECT_EQ(x.displayed, y.displayed) << "event " << i;
        EXPECT_EQ(x.qosTarget, y.qosTarget) << "event " << i;
        EXPECT_EQ(x.configIndex, y.configIndex) << "event " << i;
        EXPECT_EQ(x.busyEnergy, y.busyEnergy) << "event " << i;
        EXPECT_EQ(x.execMs, y.execMs) << "event " << i;
        EXPECT_EQ(x.servedSpeculatively, y.servedSpeculatively);
        EXPECT_EQ(x.squashedSpeculation, y.squashedSpeculation);
    }
    EXPECT_EQ(a.totalEnergy, b.totalEnergy);
    EXPECT_EQ(a.busyEnergy, b.busyEnergy);
    EXPECT_EQ(a.idleEnergy, b.idleEnergy);
    EXPECT_EQ(a.overheadEnergy, b.overheadEnergy);
    EXPECT_EQ(a.wasteEnergy, b.wasteEnergy);
    EXPECT_EQ(a.duration, b.duration);
    EXPECT_EQ(a.endOfRunWasteMs, b.endOfRunWasteMs);
    EXPECT_EQ(a.endOfRunWasteMj, b.endOfRunWasteMj);
    EXPECT_EQ(a.avgQueueLength, b.avgQueueLength);
    EXPECT_EQ(a.fellBackToReactive, b.fellBackToReactive);
}

TEST(HotPath, EngineReusedAcrossRunsLeaksNoState)
{
    TraceGenerator generator(exynos());
    const WebApp &app = generator.appFor(appByName("cnn"));
    const PowerModel power(exynos());
    const InteractionTrace first = generator.generate(appByName("cnn"), 1);
    const InteractionTrace second =
        generator.generate(appByName("cnn"), 2);

    // One engine runs session 1 then session 2; a fresh engine runs
    // only session 2. If reset() left ANY session state behind (DOM
    // mutations, queue contents, meter segments, arena slices), the
    // reused engine's second result would diverge.
    RuntimeSimulator reused(exynos(), power, app);
    {
        EbsScheduler driver;
        (void)reused.run(first, driver);
    }
    EbsScheduler reused_driver;
    const SimResult from_reused = reused.run(second, reused_driver);

    RuntimeSimulator fresh(exynos(), power, app);
    EbsScheduler fresh_driver;
    const SimResult from_fresh = fresh.run(second, fresh_driver);

    expectSameResult(from_reused, from_fresh);
}

TEST(HotPath, RunStatsIsBitIdenticalToReducingTheFullResult)
{
    TraceGenerator generator(exynos());
    const WebApp &app = generator.appFor(appByName("social_feed"));
    const PowerModel power(exynos());
    const InteractionTrace trace =
        generator.generate(appByName("social_feed"), 11);

    RuntimeSimulator sim(exynos(), power, app);
    EbsScheduler full_driver;
    const SessionStats full =
        SessionStats::reduce(sim.run(trace, full_driver));

    // Same reused engine, stats-only path: the accumulators must
    // reproduce the reduction bit for bit (the report contract).
    EbsScheduler stats_driver;
    const SessionStats stats = sim.runStats(trace, stats_driver);

    EXPECT_EQ(stats.events, full.events);
    EXPECT_EQ(stats.violations, full.violations);
    EXPECT_EQ(stats.totalEnergyMj, full.totalEnergyMj);
    EXPECT_EQ(stats.busyEnergyMj, full.busyEnergyMj);
    EXPECT_EQ(stats.idleEnergyMj, full.idleEnergyMj);
    EXPECT_EQ(stats.overheadEnergyMj, full.overheadEnergyMj);
    EXPECT_EQ(stats.wasteEnergyMj, full.wasteEnergyMj);
    EXPECT_EQ(stats.durationMs, full.durationMs);
    EXPECT_EQ(stats.meanLatencyMs, full.meanLatencyMs);
    EXPECT_EQ(stats.p95LatencyMs, full.p95LatencyMs);
    EXPECT_EQ(stats.maxLatencyMs, full.maxLatencyMs);
    EXPECT_EQ(stats.predictionsMade, full.predictionsMade);
    EXPECT_EQ(stats.predictionsCorrect, full.predictionsCorrect);
    EXPECT_EQ(stats.mispredictions, full.mispredictions);
    EXPECT_EQ(stats.mispredictWasteMs, full.mispredictWasteMs);
    EXPECT_EQ(stats.avgQueueLength, full.avgQueueLength);
    EXPECT_EQ(stats.fellBackToReactive, full.fellBackToReactive);
}

} // namespace
} // namespace pes
