/**
 * @file
 * Unit tests for the hardware substrate: ACMP platform, power model,
 * Eqn.-1 latency model, two-point estimator, and energy meter.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "hw/acmp.hh"
#include "hw/dvfs_model.hh"
#include "hw/energy_meter.hh"
#include "hw/estimator.hh"
#include "hw/power_model.hh"
#include "util/rng.hh"

namespace pes {
namespace {

// ---------------------------------------------------------------- ACMP

TEST(Acmp, Exynos5410FrequencyLadders)
{
    const AcmpPlatform soc = AcmpPlatform::exynos5410();
    // Paper Sec. 3: A15 800..1800 @100 (11 points); A7 350..600 @50 (6).
    const auto big = soc.cluster(CoreType::Big).frequencies();
    const auto little = soc.cluster(CoreType::Little).frequencies();
    ASSERT_EQ(big.size(), 11u);
    ASSERT_EQ(little.size(), 6u);
    EXPECT_DOUBLE_EQ(big.front(), 800.0);
    EXPECT_DOUBLE_EQ(big.back(), 1800.0);
    EXPECT_DOUBLE_EQ(little.front(), 350.0);
    EXPECT_DOUBLE_EQ(little.back(), 600.0);
    EXPECT_EQ(soc.numConfigs(), 17);
}

TEST(Acmp, ConfigIndexRoundTrip)
{
    const AcmpPlatform soc = AcmpPlatform::exynos5410();
    for (int i = 0; i < soc.numConfigs(); ++i)
        EXPECT_EQ(soc.configIndex(soc.configAt(i)), i);
}

TEST(Acmp, MinMaxConfigs)
{
    const AcmpPlatform soc = AcmpPlatform::exynos5410();
    EXPECT_EQ(soc.maxConfig().core, CoreType::Big);
    EXPECT_DOUBLE_EQ(soc.maxConfig().freq, 1800.0);
    EXPECT_EQ(soc.minConfig().core, CoreType::Little);
    EXPECT_DOUBLE_EQ(soc.minConfig().freq, 350.0);
}

TEST(Acmp, SwitchCosts)
{
    const AcmpPlatform soc = AcmpPlatform::exynos5410();
    const AcmpConfig big_hi = soc.maxConfig();
    const AcmpConfig big_lo{CoreType::Big, 800.0};
    const AcmpConfig little{CoreType::Little, 600.0};

    EXPECT_DOUBLE_EQ(soc.switchCost(big_hi, big_hi), 0.0);
    // DVFS only: ~100 us.
    EXPECT_DOUBLE_EQ(soc.switchCost(big_hi, big_lo), 0.1);
    // Migration + DVFS: ~120 us.
    EXPECT_DOUBLE_EQ(soc.switchCost(big_hi, little), 0.12);
}

TEST(Acmp, VoltageCurveMonotone)
{
    const AcmpPlatform soc = AcmpPlatform::exynos5410();
    const ClusterSpec &big = soc.cluster(CoreType::Big);
    double last = 0.0;
    for (FreqMhz f : big.frequencies()) {
        const double v = big.voltageAt(f);
        EXPECT_GE(v, last);
        last = v;
    }
    EXPECT_DOUBLE_EQ(big.voltageAt(big.fmin), big.vmin);
    EXPECT_DOUBLE_EQ(big.voltageAt(big.fmax), big.vmax);
}

TEST(Acmp, TegraParkerWellFormed)
{
    const AcmpPlatform soc = AcmpPlatform::tegraParker();
    EXPECT_GT(soc.numConfigs(), 8);
    EXPECT_GT(soc.cluster(CoreType::Big).fmax,
              soc.cluster(CoreType::Little).fmax);
}

// ---------------------------------------------------------------- Power

class PowerModelTest : public ::testing::Test
{
  protected:
    AcmpPlatform soc = AcmpPlatform::exynos5410();
    PowerModel power{soc};
};

TEST_F(PowerModelTest, BusyPowerMonotoneInFrequency)
{
    for (CoreType core : {CoreType::Little, CoreType::Big}) {
        double last = 0.0;
        for (FreqMhz f : soc.cluster(core).frequencies()) {
            const double p = power.busyPower({core, f});
            EXPECT_GT(p, last);
            last = p;
        }
    }
}

TEST_F(PowerModelTest, BigDominatesLittle)
{
    const double big_min = power.busyPower({CoreType::Big, 800.0});
    const double little_max = power.busyPower({CoreType::Little, 600.0});
    EXPECT_GT(big_min, little_max);
}

TEST_F(PowerModelTest, RealisticMagnitudes)
{
    // Published Exynos-5410-class figures: little cluster tens to a
    // couple hundred mW, big cluster hundreds to a few thousand mW.
    EXPECT_GT(power.busyPower(soc.minConfig()), 30.0);
    EXPECT_LT(power.busyPower(soc.minConfig()), 250.0);
    EXPECT_GT(power.busyPower(soc.maxConfig()), 1000.0);
    EXPECT_LT(power.busyPower(soc.maxConfig()), 4000.0);
}

TEST_F(PowerModelTest, IdleFarBelowBusy)
{
    EXPECT_LT(power.idlePower(CoreType::Big),
              0.2 * power.busyPower({CoreType::Big, 800.0}));
    EXPECT_LT(power.idlePower(CoreType::Little),
              power.busyPower(soc.minConfig()));
    EXPECT_DOUBLE_EQ(power.platformIdlePower(),
                     power.idlePower(CoreType::Big) +
                         power.idlePower(CoreType::Little));
}

TEST_F(PowerModelTest, EnergySuperlinearInFrequency)
{
    // Same cycles at higher f cost more energy despite shorter time
    // (V^2 scaling): the DVFS slowdown must be a net energy win.
    const DvfsLatencyModel model(soc);
    const Workload work{0.0, 100.0};
    const EnergyMj e_max = power.busyEnergy(
        soc.maxConfig(), model.latency(work, soc.maxConfig()));
    const AcmpConfig big_lo{CoreType::Big, 800.0};
    const EnergyMj e_lo =
        power.busyEnergy(big_lo, model.latency(work, big_lo));
    EXPECT_GT(e_max, e_lo);
}

TEST_F(PowerModelTest, SaveLoadRoundTrip)
{
    const std::string path = "/tmp/pes_power_lut_test.txt";
    ASSERT_TRUE(power.saveToFile(path));
    const auto loaded = PowerModel::loadFromFile(path, soc);
    ASSERT_TRUE(loaded.has_value());
    for (int i = 0; i < soc.numConfigs(); ++i)
        EXPECT_NEAR(loaded->busyPowerAt(i), power.busyPowerAt(i), 1e-9);
    EXPECT_NEAR(loaded->platformIdlePower(), power.platformIdlePower(),
                1e-9);
    std::filesystem::remove(path);
}

TEST_F(PowerModelTest, LoadRejectsMissingFile)
{
    EXPECT_FALSE(PowerModel::loadFromFile("/nonexistent/lut.txt", soc)
                     .has_value());
}

TEST_F(PowerModelTest, LoadRejectsWrongPlatform)
{
    const std::string path = "/tmp/pes_power_lut_test2.txt";
    ASSERT_TRUE(power.saveToFile(path));
    const AcmpPlatform other = AcmpPlatform::tegraParker();
    EXPECT_FALSE(PowerModel::loadFromFile(path, other).has_value());
    std::filesystem::remove(path);
}

// ---------------------------------------------------------------- DVFS

class DvfsModelTest : public ::testing::Test
{
  protected:
    AcmpPlatform soc = AcmpPlatform::exynos5410();
    DvfsLatencyModel model{soc};
};

TEST_F(DvfsModelTest, Eqn1OnBigCore)
{
    // T = Tmem + Ndep / f: 900 Mcycles at 1800 MHz = 500 ms.
    const Workload work{100.0, 900.0};
    EXPECT_NEAR(model.latency(work, soc.maxConfig()), 600.0, 1e-9);
}

TEST_F(DvfsModelTest, LittleCoreAppliesCpiFactor)
{
    const Workload work{0.0, 60.0};
    const double cpi = soc.cluster(CoreType::Little).cpiFactor;
    EXPECT_NEAR(model.latency(work, {CoreType::Little, 600.0}),
                1000.0 * 60.0 * cpi / 600.0, 1e-9);
}

TEST_F(DvfsModelTest, LatencyMonotoneAcrossConfigs)
{
    const Workload work{5.0, 200.0};
    // Within a cluster, higher frequency is never slower.
    for (CoreType core : {CoreType::Little, CoreType::Big}) {
        double last = 1e18;
        for (FreqMhz f : soc.cluster(core).frequencies()) {
            const double t = model.latency(work, {core, f});
            EXPECT_LT(t, last);
            last = t;
        }
    }
}

TEST_F(DvfsModelTest, MemoryTimeIsFrequencyInvariant)
{
    const Workload work{42.0, 0.0};
    for (int i = 0; i < soc.numConfigs(); ++i)
        EXPECT_NEAR(model.latencyAt(work, i), 42.0, 1e-12);
}

/** Two-point recovery must be exact for any pair of distinct configs. */
class TwoPointRecovery
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
  protected:
    AcmpPlatform soc = AcmpPlatform::exynos5410();
    DvfsLatencyModel model{soc};
};

TEST_P(TwoPointRecovery, RecoversWorkloadExactly)
{
    const auto [i, j] = GetParam();
    const AcmpConfig a = soc.configAt(i);
    const AcmpConfig b = soc.configAt(j);
    if (std::abs(model.cycleCoeff(a) - model.cycleCoeff(b)) < 1e-12)
        GTEST_SKIP() << "identical cycle coefficients";

    const Workload truth{7.5, 123.0};
    const Workload fit = model.solveTwoPoint(
        a, model.latency(truth, a), b, model.latency(truth, b));
    EXPECT_NEAR(fit.tmemMs, truth.tmemMs, 1e-6);
    EXPECT_NEAR(fit.ndep, truth.ndep, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    ConfigPairs, TwoPointRecovery,
    ::testing::Values(std::make_tuple(0, 5), std::make_tuple(0, 16),
                      std::make_tuple(6, 16), std::make_tuple(6, 11),
                      std::make_tuple(2, 9), std::make_tuple(5, 6),
                      std::make_tuple(10, 16), std::make_tuple(1, 3)));

// ------------------------------------------------------------ Estimator

class EstimatorTest : public ::testing::Test
{
  protected:
    AcmpPlatform soc = AcmpPlatform::exynos5410();
    DvfsLatencyModel model{soc};
    TwoPointEstimator estimator{model};
};

TEST_F(EstimatorTest, NoEstimateBeforeTwoMeasurements)
{
    EXPECT_FALSE(estimator.hasEstimate(1));
    estimator.record(1, soc.maxConfig(), 100.0);
    EXPECT_FALSE(estimator.hasEstimate(1));
    EXPECT_EQ(estimator.measurementCount(1), 1);
}

TEST_F(EstimatorTest, ExactAfterTwoCleanMeasurements)
{
    const Workload truth{12.0, 300.0};
    const AcmpConfig a = soc.maxConfig();
    const AcmpConfig b{CoreType::Big, 1000.0};
    estimator.record(7, a, model.latency(truth, a));
    estimator.record(7, b, model.latency(truth, b));
    ASSERT_TRUE(estimator.hasEstimate(7));
    EXPECT_NEAR(estimator.estimate(7)->tmemMs, truth.tmemMs, 1e-6);
    EXPECT_NEAR(estimator.estimate(7)->ndep, truth.ndep, 1e-6);
}

TEST_F(EstimatorTest, LeastSquaresConvergesUnderNoise)
{
    const Workload truth{10.0, 200.0};
    Rng rng(5);
    for (int i = 0; i < 60; ++i) {
        const AcmpConfig cfg =
            soc.configAt(rng.uniformInt(0, soc.numConfigs() - 1));
        const double noisy =
            model.latency(truth, cfg) * rng.lognormal(1.0, 0.05);
        estimator.record(9, cfg, noisy);
    }
    ASSERT_TRUE(estimator.hasEstimate(9));
    EXPECT_NEAR(estimator.estimate(9)->ndep, truth.ndep,
                truth.ndep * 0.15);
}

TEST_F(EstimatorTest, SameCoefficientMeasurementsNotIdentifiable)
{
    estimator.record(3, soc.maxConfig(), 100.0);
    estimator.record(3, soc.maxConfig(), 105.0);
    EXPECT_FALSE(estimator.hasEstimate(3));
}

TEST_F(EstimatorTest, ProbeProtocol)
{
    // First encounter probes at the deadline-safe maximum.
    EXPECT_EQ(estimator.probeConfig(4), soc.maxConfig());
    estimator.record(4, soc.maxConfig(), 50.0);
    // Second probe differs so Eqn. 1 is identifiable.
    const AcmpConfig second = estimator.probeConfig(4);
    EXPECT_NE(model.cycleCoeff(second),
              model.cycleCoeff(soc.maxConfig()));
}

TEST_F(EstimatorTest, IgnoresNonPositiveLatencies)
{
    estimator.record(8, soc.maxConfig(), -5.0);
    estimator.record(8, soc.maxConfig(), 0.0);
    EXPECT_EQ(estimator.measurementCount(8), 0);
}

TEST_F(EstimatorTest, ClampsNegativeFitComponents)
{
    // Latencies that *decrease* with the cycle coefficient would imply
    // negative Ndep; the fit clamps to physical values.
    estimator.record(11, soc.maxConfig(), 200.0);
    estimator.record(11, {CoreType::Big, 900.0}, 100.0);
    ASSERT_TRUE(estimator.hasEstimate(11));
    EXPECT_GE(estimator.estimate(11)->tmemMs, 0.0);
    EXPECT_GE(estimator.estimate(11)->ndep, 0.0);
}

TEST_F(EstimatorTest, FirstMeasurementAccessor)
{
    EXPECT_FALSE(estimator.firstMeasurement(2).has_value());
    estimator.record(2, soc.maxConfig(), 80.0);
    const auto first = estimator.firstMeasurement(2);
    ASSERT_TRUE(first.has_value());
    EXPECT_NEAR(first->second, 80.0, 1e-12);
    EXPECT_NEAR(first->first, model.cycleCoeff(soc.maxConfig()), 1e-12);
}

// ------------------------------------------------------------ EnergyMeter

TEST(EnergyMeter, IntegratesSegments)
{
    EnergyMeter meter;
    meter.addSegment(0.0, 1000.0, 500.0, EnergyTag::Busy);   // 500 mJ
    meter.addSegment(1000.0, 3000.0, 100.0, EnergyTag::Idle); // 200 mJ
    EXPECT_NEAR(meter.totalEnergy(), 700.0, 1e-9);
    EXPECT_NEAR(meter.energyOfTag(EnergyTag::Busy), 500.0, 1e-9);
    EXPECT_NEAR(meter.energyOfTag(EnergyTag::Idle), 200.0, 1e-9);
    EXPECT_NEAR(meter.duration(), 3000.0, 1e-9);
}

TEST(EnergyMeter, RetagMovesEnergy)
{
    EnergyMeter meter;
    const uint64_t id =
        meter.addSegment(0.0, 100.0, 1000.0, EnergyTag::Busy);
    meter.retag(id, EnergyTag::SpeculativeWaste);
    EXPECT_NEAR(meter.energyOfTag(EnergyTag::Busy), 0.0, 1e-12);
    EXPECT_NEAR(meter.energyOfTag(EnergyTag::SpeculativeWaste), 100.0,
                1e-9);
    EXPECT_NEAR(meter.energyOfSegment(id), 100.0, 1e-9);
}

TEST(EnergyMeter, AveragePower)
{
    EnergyMeter meter;
    meter.addSegment(0.0, 500.0, 200.0, EnergyTag::Busy);
    meter.addSegment(500.0, 1000.0, 400.0, EnergyTag::Busy);
    EXPECT_NEAR(meter.averagePower(), 300.0, 1e-9);
}

TEST(EnergyMeter, SampleTraceMatchesWaveform)
{
    EnergyMeter meter;
    meter.addSegment(0.0, 10.0, 100.0, EnergyTag::Busy);
    meter.addSegment(10.0, 20.0, 300.0, EnergyTag::Busy);
    // 1 kHz sampling: one sample per ms.
    const auto trace = meter.sampleTrace(1000.0);
    ASSERT_GE(trace.size(), 20u);
    EXPECT_NEAR(trace[5], 100.0, 1e-9);
    EXPECT_NEAR(trace[15], 300.0, 1e-9);
}

TEST(EnergyMeter, OverlappingSegmentsSum)
{
    EnergyMeter meter;
    meter.addSegment(0.0, 10.0, 100.0, EnergyTag::Busy);
    meter.addSegment(0.0, 10.0, 50.0, EnergyTag::Idle);
    const auto trace = meter.sampleTrace(1000.0);
    EXPECT_NEAR(trace[5], 150.0, 1e-9);
}

TEST(EnergyMeter, ZeroLengthSegmentContributesNothing)
{
    EnergyMeter meter;
    meter.addSegment(5.0, 5.0, 1000.0, EnergyTag::Busy);
    EXPECT_NEAR(meter.totalEnergy(), 0.0, 1e-12);
}

} // namespace
} // namespace pes
