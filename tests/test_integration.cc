/**
 * @file
 * End-to-end integration tests: the full pipeline (DOM synthesis ->
 * trace generation -> predictor training -> replay under every
 * scheduler) and the cross-scheduler invariants the paper's evaluation
 * rests on.
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "core/predictor_training.hh"
#include "sim/classifier.hh"
#include "util/logging.hh"

namespace pes {
namespace {

/** Shared harness: train once for the whole test binary. */
Experiment &
experiment()
{
    static Experiment exp;
    static bool trained = false;
    if (!trained) {
        setQuiet(true);
        exp.trainedModel();
        trained = true;
    }
    return exp;
}

TEST(Integration, TrainedPredictorAccuracyBands)
{
    // Paper Fig. 8: ~91% on seen apps, ~89% on unseen, with apps ranging
    // roughly 80..97%. Verified on a subset for test speed.
    Experiment &exp = experiment();
    const LogisticModel &model = exp.trainedModel();
    double sum = 0.0;
    int n = 0;
    for (const char *name : {"cnn", "ebay", "espn", "tmall", "yahoo"}) {
        const AppProfile &profile = appByName(name);
        const WebApp &app = exp.generator().appFor(profile);
        for (const auto &trace :
             exp.generator().evaluationSet(profile, 2)) {
            const PredictorEval eval =
                evaluatePredictor(model, app, trace);
            sum += eval.accuracy();
            ++n;
        }
    }
    const double mean = sum / n;
    EXPECT_GT(mean, 0.82);
    EXPECT_LT(mean, 1.0);
}

TEST(Integration, DomAnalysisAblationCostsAccuracy)
{
    // Sec. 6.5: without DOM analysis the predictor cannot roll the
    // hypothetical state through predicted events (no SemanticTree), so
    // the *runtime* (multi-step) prediction accuracy drops.
    Experiment &exp = experiment();
    PesScheduler::Config without;
    without.predictor.useDomAnalysis = false;
    without.nameOverride = "PES-noDOM";

    ResultSet rs;
    for (const char *name : {"cnn", "ebay", "twitter", "google"}) {
        const AppProfile &profile = appByName(name);
        const auto with_driver = exp.makeScheduler(SchedulerKind::Pes);
        exp.runAppUnder(profile, *with_driver, rs);
        PesScheduler without_driver(exp.trainedModel(), without);
        exp.runAppUnder(profile, without_driver, rs);
    }
    const double acc_with =
        rs.summarizeScheduler("PES").predictionAccuracy;
    const double acc_without =
        rs.summarizeScheduler("PES-noDOM").predictionAccuracy;
    EXPECT_GT(acc_with, acc_without);
}

TEST(Integration, QueueLengthsStaySmall)
{
    // Sec. 4.2: "the average event queue length is below 2" — humans
    // generate interactions slowly. Holds on aggregate (the burstiest
    // app can exceed it on individual traces).
    Experiment &exp = experiment();
    ResultSet rs;
    for (const char *name : {"cnn", "twitter", "google"}) {
        const auto driver = exp.makeScheduler(SchedulerKind::Ebs);
        exp.runAppUnder(appByName(name), *driver, rs);
    }
    EXPECT_LT(rs.summarizeScheduler("EBS").avgQueueLength, 2.0);
    for (const SimResult &r : rs.results())
        EXPECT_LT(r.avgQueueLength, 3.0) << r.appName;
}

TEST(Integration, EventTypeDistributionUnderEbs)
{
    // Fig. 3's structure: all four categories appear; Type IV dominates;
    // a meaningful share of events is non-benign.
    Experiment &exp = experiment();
    EventClassifier classifier(exp.platform(), exp.power());
    CategoryDistribution dist;
    for (const char *name : {"cnn", "youtube", "twitter", "google"}) {
        const AppProfile &profile = appByName(name);
        const auto driver = exp.makeScheduler(SchedulerKind::Ebs);
        for (const auto &trace :
             exp.generator().evaluationSet(profile, 2)) {
            const SimResult r = exp.runTrace(profile, trace, *driver);
            dist.merge(classifier.classifyRun(trace, r));
        }
    }
    EXPECT_GT(dist.fraction(EventCategory::TypeIV), 0.5);
    const double non_benign = 1.0 - dist.fraction(EventCategory::TypeIV);
    EXPECT_GT(non_benign, 0.05);
    EXPECT_GT(dist.counts[static_cast<size_t>(EventCategory::TypeI)] +
                  dist.counts[static_cast<size_t>(EventCategory::TypeII)],
              0);
}

TEST(Integration, ParetoDominanceOfPes)
{
    // Fig. 13: PES must Pareto-dominate EBS (less energy, fewer
    // violations) and beat the governors on both axes.
    Experiment &exp = experiment();
    ResultSet rs;
    for (const char *name : {"cnn", "ebay", "twitter", "google"}) {
        const AppProfile &profile = appByName(name);
        for (SchedulerKind kind :
             {SchedulerKind::Interactive, SchedulerKind::Ondemand,
              SchedulerKind::Ebs, SchedulerKind::Pes}) {
            const auto driver = exp.makeScheduler(kind);
            exp.runAppUnder(profile, *driver, rs);
        }
    }
    const auto apps = rs.apps();
    const double pes_energy =
        rs.meanNormalizedEnergy(apps, "PES", "Interactive");
    const double ebs_energy =
        rs.meanNormalizedEnergy(apps, "EBS", "Interactive");
    const double pes_viol = rs.summarizeScheduler("PES").violationRate;
    const double ebs_viol = rs.summarizeScheduler("EBS").violationRate;
    const double interactive_viol =
        rs.summarizeScheduler("Interactive").violationRate;

    EXPECT_LT(pes_energy, ebs_energy);
    EXPECT_LT(pes_viol, ebs_viol);
    EXPECT_LT(pes_viol, interactive_viol);
}

TEST(Integration, MispredictWasteIsSmallAmortized)
{
    // Sec. 6.3: waste amortizes to a few ms per event and a small
    // fraction of total energy.
    Experiment &exp = experiment();
    ResultSet rs;
    for (const char *name : {"cnn", "ebay", "google"}) {
        const auto driver = exp.makeScheduler(SchedulerKind::Pes);
        exp.runAppUnder(appByName(name), *driver, rs);
    }
    for (const SimResult &r : rs.results()) {
        const double waste_fraction =
            r.totalEnergy > 0.0 ? r.wasteEnergy / r.totalEnergy : 0.0;
        EXPECT_LT(waste_fraction, 0.15) << r.appName;
    }
}

TEST(Integration, DeterministicEndToEnd)
{
    // Same seeds, fresh harness -> identical results (the property every
    // figure bench relies on).
    setQuiet(true);
    Experiment a, b;
    const AppProfile &profile = appByName("bbc");
    const auto trace_a = a.generator().evaluationSet(profile, 1).front();
    const auto trace_b = b.generator().evaluationSet(profile, 1).front();
    ASSERT_EQ(trace_a.serialize(), trace_b.serialize());

    const auto da = a.makeScheduler(SchedulerKind::Pes);
    const auto db = b.makeScheduler(SchedulerKind::Pes);
    const SimResult ra = a.runTrace(profile, trace_a, *da);
    const SimResult rb = b.runTrace(profile, trace_b, *db);
    EXPECT_DOUBLE_EQ(ra.totalEnergy, rb.totalEnergy);
    EXPECT_EQ(ra.predictionsMade, rb.predictionsMade);
    ASSERT_EQ(ra.events.size(), rb.events.size());
    for (size_t i = 0; i < ra.events.size(); ++i)
        EXPECT_DOUBLE_EQ(ra.events[i].displayed, rb.events[i].displayed);
}

TEST(Integration, TegraParkerPortability)
{
    // Sec. 6.5 "other devices": the same machinery produces savings on
    // the TX2 model as well.
    setQuiet(true);
    Experiment exp(AcmpPlatform::tegraParker());
    exp.trainedModel();
    ResultSet rs;
    for (const char *name : {"cnn", "ebay"}) {
        const AppProfile &profile = appByName(name);
        for (SchedulerKind kind :
             {SchedulerKind::Interactive, SchedulerKind::Pes}) {
            const auto driver = exp.makeScheduler(kind);
            exp.runAppUnder(profile, *driver, rs);
        }
    }
    EXPECT_LT(rs.meanNormalizedEnergy(rs.apps(), "PES", "Interactive"),
              1.0);
}

} // namespace
} // namespace pes
