/**
 * @file
 * Unit tests for the ML substrate: Table-1 features, logistic models,
 * SGD training, and classification metrics.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "ml/features.hh"
#include "ml/logistic.hh"
#include "ml/metrics.hh"
#include "ml/trainer.hh"
#include "util/rng.hh"

namespace pes {
namespace {

// ------------------------------------------------------------ Features

TEST(Features, NamesCoverTable1)
{
    // Paper Table 1: 2 application-inherent + 3 interaction-dependent.
    EXPECT_EQ(kNumFeatures, 5);
    EXPECT_STREQ(featureName(0), "clickable_region_pct");
    EXPECT_STREQ(featureName(1), "visible_link_pct");
    EXPECT_STREQ(featureName(2), "dist_to_prev_click");
    EXPECT_STREQ(featureName(3), "navigations_in_window");
    EXPECT_STREQ(featureName(4), "scrolls_in_window");
}

TEST(Features, WindowIsFiveEvents)
{
    // "runtime information within a window of the five most recent
    // events" (Sec. 5.2).
    EXPECT_EQ(FeatureWindow::kWindowSize, 5);
    FeatureWindow w;
    for (int i = 0; i < 8; ++i)
        w.observe(DomEventType::Scroll, 0, 0);
    EXPECT_EQ(w.eventsInWindow(), 5);
}

TEST(Features, CountsNavsAndScrolls)
{
    FeatureWindow w;
    w.observe(DomEventType::Load, 0, 0);
    w.observe(DomEventType::Scroll, 0, 100);
    w.observe(DomEventType::TouchMove, 0, 200);
    w.observe(DomEventType::Click, 50, 250);
    ViewportStats stats;
    const FeatureVector f = w.extract(stats);
    EXPECT_NEAR(f.navsInWindow(), 1.0 / 5.0, 1e-12);
    EXPECT_NEAR(f.scrollsInWindow(), 2.0 / 5.0, 1e-12);
}

TEST(Features, OldEventsFallOutOfWindow)
{
    FeatureWindow w;
    w.observe(DomEventType::Load, 0, 0);
    for (int i = 0; i < 5; ++i)
        w.observe(DomEventType::Click, 0, 0);
    const FeatureVector f = w.extract(ViewportStats{});
    EXPECT_NEAR(f.navsInWindow(), 0.0, 1e-12);  // load aged out
}

TEST(Features, DistanceBetweenLastTwoTaps)
{
    FeatureWindow w;
    w.observe(DomEventType::Click, 0.0, 0.0);
    w.observe(DomEventType::Scroll, 99.0, 99.0);  // not a tap
    w.observe(DomEventType::Click, 30.0, 40.0);
    const FeatureVector f = w.extract(ViewportStats{});
    // sqrt(30^2+40^2)=50, normalized by the 734 px diagonal.
    EXPECT_NEAR(f.distToPrevClick(), 50.0 / 734.0, 1e-9);
}

TEST(Features, DistanceZeroWithFewerThanTwoTaps)
{
    FeatureWindow w;
    w.observe(DomEventType::Click, 100.0, 100.0);
    EXPECT_NEAR(w.extract(ViewportStats{}).distToPrevClick(), 0.0, 1e-12);
}

TEST(Features, ViewportStatsPassThrough)
{
    FeatureWindow w;
    ViewportStats stats;
    stats.clickableFrac = 0.42;
    stats.visibleLinkFrac = 0.17;
    const FeatureVector f = w.extract(stats);
    EXPECT_DOUBLE_EQ(f.clickableFrac(), 0.42);
    EXPECT_DOUBLE_EQ(f.visibleLinkFrac(), 0.17);
}

TEST(Features, LastTapPosition)
{
    FeatureWindow w;
    double x = 0, y = 0;
    EXPECT_FALSE(w.lastTapPosition(x, y));
    w.observe(DomEventType::Click, 12.0, 34.0);
    w.observe(DomEventType::Scroll, 0.0, 0.0);
    ASSERT_TRUE(w.lastTapPosition(x, y));
    EXPECT_DOUBLE_EQ(x, 12.0);
    EXPECT_DOUBLE_EQ(y, 34.0);
}

TEST(Features, ClearResets)
{
    FeatureWindow w;
    w.observe(DomEventType::Click, 1, 1);
    w.clear();
    EXPECT_EQ(w.eventsInWindow(), 0);
}

// ------------------------------------------------------------ Logistic

TEST(Logistic, SigmoidProperties)
{
    EXPECT_NEAR(sigmoid(0.0), 0.5, 1e-12);
    EXPECT_NEAR(sigmoid(100.0), 1.0, 1e-12);
    EXPECT_NEAR(sigmoid(-100.0), 0.0, 1e-12);
    EXPECT_NEAR(sigmoid(2.0) + sigmoid(-2.0), 1.0, 1e-12);
}

TEST(Logistic, ZeroModelOutputsHalf)
{
    LogisticModel model;
    FeatureVector x;
    x.v = {0.1, 0.2, 0.3, 0.4, 0.5};
    for (int c = 0; c < kNumDomEventTypes; ++c)
        EXPECT_NEAR(model.probability(c, x), 0.5, 1e-12);
}

TEST(Logistic, LogitIsLinear)
{
    // ln(p/(1-p)) = x.beta (Sec. 5.2).
    LogisticModel model;
    model.weight(0, 0) = 2.0;
    model.weight(0, kNumFeatures) = -1.0;  // bias
    FeatureVector x;
    x.v = {3.0, 0, 0, 0, 0};
    EXPECT_NEAR(model.logit(0, x), 5.0, 1e-12);
    const double p = model.probability(0, x);
    EXPECT_NEAR(std::log(p / (1.0 - p)), 5.0, 1e-9);
}

TEST(Logistic, SerializeRoundTrip)
{
    LogisticModel model;
    Rng rng(17);
    for (int c = 0; c < kNumDomEventTypes; ++c)
        for (int f = 0; f < LogisticModel::kWeightsPerClass; ++f)
            model.weight(c, f) = rng.normal(0.0, 2.0);
    const auto restored = LogisticModel::deserialize(model.serialize());
    ASSERT_TRUE(restored.has_value());
    EXPECT_EQ(*restored, model);
}

TEST(Logistic, DeserializeRejectsGarbage)
{
    EXPECT_FALSE(LogisticModel::deserialize("not-a-model").has_value());
    EXPECT_FALSE(LogisticModel::deserialize("pes-logistic-v1 2 3\n1 2 3")
                     .has_value());
}

// ------------------------------------------------------------ Trainer

TEST(Trainer, LearnsSeparableData)
{
    // Feature 4 (scrolls) high => Scroll, else Click.
    std::vector<TrainSample> samples;
    Rng rng(3);
    for (int i = 0; i < 400; ++i) {
        TrainSample s;
        const bool scrolly = rng.bernoulli(0.5);
        s.x.v = {rng.uniform(), rng.uniform(), rng.uniform(),
                 rng.uniform(0.0, 0.2),
                 scrolly ? rng.uniform(0.6, 1.0) : rng.uniform(0.0, 0.2)};
        s.label = scrolly ? DomEventType::Scroll : DomEventType::Click;
        samples.push_back(s);
    }
    SgdTrainer trainer;
    const LogisticModel model = trainer.train(samples);
    int correct = 0;
    for (const TrainSample &s : samples) {
        const auto probs = model.probabilities(s.x);
        const bool predicted_scroll =
            probs[static_cast<size_t>(DomEventType::Scroll)] >
            probs[static_cast<size_t>(DomEventType::Click)];
        correct += (predicted_scroll ==
                    (s.label == DomEventType::Scroll)) ? 1 : 0;
    }
    EXPECT_GT(correct, 380);  // > 95% on separable data
}

TEST(Trainer, LossDecreasesWithTraining)
{
    std::vector<TrainSample> samples;
    Rng rng(9);
    for (int i = 0; i < 200; ++i) {
        TrainSample s;
        const bool navy = rng.bernoulli(0.4);
        s.x.v = {0, navy ? 0.8 : 0.1, 0, navy ? 0.9 : 0.1, 0};
        s.label = navy ? DomEventType::Load : DomEventType::Click;
        samples.push_back(s);
    }
    const LogisticModel untrained;
    SgdTrainer trainer;
    const LogisticModel trained = trainer.train(samples);
    EXPECT_LT(SgdTrainer::loss(trained, samples),
              SgdTrainer::loss(untrained, samples));
}

TEST(Trainer, DeterministicGivenSeed)
{
    std::vector<TrainSample> samples;
    Rng rng(4);
    for (int i = 0; i < 50; ++i) {
        TrainSample s;
        s.x.v = {rng.uniform(), rng.uniform(), rng.uniform(),
                 rng.uniform(), rng.uniform()};
        s.label = static_cast<DomEventType>(rng.uniformInt(0, 5));
        samples.push_back(s);
    }
    SgdTrainer a, b;
    EXPECT_EQ(a.train(samples).serialize(), b.train(samples).serialize());
}

TEST(Trainer, EmptyDatasetYieldsZeroModel)
{
    SgdTrainer trainer;
    const LogisticModel model = trainer.train({});
    EXPECT_EQ(model, LogisticModel{});
}

TEST(Trainer, ProbabilitiesCalibratedOnNoisyData)
{
    // 70/30 class mix with uninformative features: the trained
    // probability should approach the base rate.
    std::vector<TrainSample> samples;
    Rng rng(21);
    for (int i = 0; i < 2000; ++i) {
        TrainSample s;
        s.x.v = {0.5, 0.5, 0.5, 0.5, 0.5};
        s.label = rng.bernoulli(0.7) ? DomEventType::Click
                                     : DomEventType::Scroll;
        samples.push_back(s);
    }
    SgdTrainer trainer;
    const LogisticModel model = trainer.train(samples);
    FeatureVector x;
    x.v = {0.5, 0.5, 0.5, 0.5, 0.5};
    EXPECT_NEAR(model.probability(
                    static_cast<int>(DomEventType::Click), x),
                0.7, 0.08);
}

// ------------------------------------------------------------ Metrics

TEST(ConfusionMatrix, AccuracyAndRecall)
{
    ConfusionMatrix cm;
    cm.add(DomEventType::Click, DomEventType::Click);
    cm.add(DomEventType::Click, DomEventType::Click);
    cm.add(DomEventType::Click, DomEventType::Scroll);
    cm.add(DomEventType::Scroll, DomEventType::Scroll);
    EXPECT_NEAR(cm.accuracy(), 0.75, 1e-12);
    EXPECT_NEAR(cm.recall(DomEventType::Click), 2.0 / 3.0, 1e-12);
    EXPECT_NEAR(cm.recall(DomEventType::Scroll), 1.0, 1e-12);
    EXPECT_NEAR(cm.recall(DomEventType::Load), 0.0, 1e-12);
    EXPECT_EQ(cm.total(), 4);
}

TEST(ConfusionMatrix, EmptyAccuracyIsZero)
{
    ConfusionMatrix cm;
    EXPECT_EQ(cm.accuracy(), 0.0);
}

TEST(CalibrationBins, PerfectCalibration)
{
    CalibrationBins bins(10);
    Rng rng(6);
    for (int i = 0; i < 20000; ++i) {
        const double conf = rng.uniform(0.05, 0.95);
        bins.add(conf, rng.bernoulli(conf));
    }
    EXPECT_LT(bins.expectedCalibrationError(), 0.03);
}

TEST(CalibrationBins, DetectsOverconfidence)
{
    CalibrationBins bins(10);
    Rng rng(8);
    for (int i = 0; i < 5000; ++i)
        bins.add(0.95, rng.bernoulli(0.5));  // claims 95%, delivers 50%
    EXPECT_GT(bins.expectedCalibrationError(), 0.3);
}

TEST(CalibrationBins, BinBookkeeping)
{
    CalibrationBins bins(4);
    bins.add(0.1, true);
    bins.add(0.9, false);
    bins.add(1.0, true);  // clamps into the last bin
    EXPECT_EQ(bins.binCount(0), 1);
    EXPECT_EQ(bins.binCount(3), 2);
    EXPECT_NEAR(bins.binAccuracy(0), 1.0, 1e-12);
    EXPECT_NEAR(bins.binAccuracy(3), 0.5, 1e-12);
}

} // namespace
} // namespace pes
