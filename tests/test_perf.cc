/**
 * @file
 * Tests for the perf-history ledger and its gate: JSONL round-trip,
 * damaged-ledger classification (truncation, bad magic, version skew —
 * classified, never crashing), CV noise hand-math, the gate exit-code
 * contract (0 within noise / 2 regressed / 3 missing / 4 corrupt or
 * fingerprint mismatch), calibrated-tolerance round-trip and its
 * consumption by both gates, parallel-scaling attribution math
 * (efficiency derivation, contention ledger, per-worker accounting),
 * and the no-feedback contract with the contention instrumentation in
 * place: telemetry-armed runs stay byte-identical to bare runs at
 * threads 1 and 8.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include "results/report_diff.hh"
#include "results/tolerance.hh"
#include "runner/fleet_runner.hh"
#include "runner/reporters.hh"
#include "telemetry/perf_history.hh"
#include "telemetry/run_telemetry.hh"
#include "telemetry/telemetry.hh"
#include "util/contention.hh"

namespace fs = std::filesystem;

namespace pes {
namespace {

/** Unique scratch directory, removed on scope exit. */
struct TempDir
{
    explicit TempDir(const std::string &name)
        : path(fs::temp_directory_path() / ("pes_perf_test_" + name))
    {
        fs::remove_all(path);
        fs::create_directories(path);
    }
    ~TempDir() { fs::remove_all(path); }

    std::string str() const { return path.string(); }

    fs::path path;
};

void
writeFile(const fs::path &path, const std::string &bytes)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os << bytes;
    ASSERT_TRUE(os.good());
}

/** A two-point sample with quality metrics and replicate spread. */
PerfSample
makeSample()
{
    PerfSample sample;
    sample.label = "bench_sim";
    sample.rev = "abc1234";
    sample.machine = "Linux-x86_64-8cpu";
    sample.config = "cfg-0011223344556677";
    sample.sessions = 288;
    sample.events = 14916;
    PerfPoint t1;
    t1.threads = 1;
    t1.set("sessions_per_sec", {3130.0, 3100.5, 3150.25});
    t1.set("execute_ms", {92.0, 92.5, 91.75});
    t1.set("duplicate_synthesis", {0.0, 0.0, 0.0});
    PerfPoint t4;
    t4.threads = 4;
    t4.set("sessions_per_sec", {2376.25, 2400.0, 2350.5});
    t4.set("execute_ms", {121.25, 120.0, 122.5});
    t4.set("duplicate_synthesis", {1.0, 0.0, 1.0});
    sample.points = {t1, t4};
    sample.quality = {{"ebs.p95_session_latency_ms", 95.75},
                      {"ebs.violation_rate", 0.05}};
    return sample;
}

// -------------------------------------------------------- round-trip

TEST(PerfHistory, JsonLineRoundTripsEveryField)
{
    const PerfSample sample = makeSample();
    const std::string line = perfSampleToJsonLine(sample);
    // One JSONL record: exactly the trailing newline, no interior ones.
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.back(), '\n');
    EXPECT_EQ(line.find('\n'), line.size() - 1);

    IntegrityProblem problem;
    const auto parsed = parsePerfSampleLine(line, &problem);
    ASSERT_TRUE(parsed.has_value()) << problem.message;
    EXPECT_EQ(parsed->label, sample.label);
    EXPECT_EQ(parsed->rev, sample.rev);
    EXPECT_EQ(parsed->machine, sample.machine);
    EXPECT_EQ(parsed->config, sample.config);
    EXPECT_EQ(parsed->sessions, sample.sessions);
    EXPECT_EQ(parsed->events, sample.events);
    EXPECT_EQ(parsed->replicates(), 3);
    ASSERT_EQ(parsed->points.size(), 2u);
    const PerfPoint *t4 = parsed->point(4);
    ASSERT_NE(t4, nullptr);
    const std::vector<double> *rates = t4->find("sessions_per_sec");
    ASSERT_NE(rates, nullptr);
    ASSERT_EQ(rates->size(), 3u);
    EXPECT_DOUBLE_EQ((*rates)[0], 2376.25);
    EXPECT_DOUBLE_EQ((*rates)[2], 2350.5);
    ASSERT_EQ(parsed->quality.size(), 2u);
    EXPECT_EQ(parsed->quality[1].first, "ebs.violation_rate");
    EXPECT_DOUBLE_EQ(parsed->quality[1].second, 0.05);

    // Round-trip is a fixed point.
    EXPECT_EQ(perfSampleToJsonLine(*parsed), line);
}

TEST(PerfHistory, AppendAndLoadAccumulateLedger)
{
    TempDir dir("ledger");
    const std::string path = (dir.path / "PERF.jsonl").string();

    PerfSample first = makeSample();
    PerfSample second = makeSample();
    second.rev = "def5678";
    std::string error;
    ASSERT_TRUE(appendPerfSample(path, first, &error)) << error;
    ASSERT_TRUE(appendPerfSample(path, second, &error)) << error;

    const PerfHistory history = loadPerfHistory(path);
    EXPECT_TRUE(history.problems.empty());
    ASSERT_EQ(history.samples.size(), 2u);
    ASSERT_NE(history.latest("bench_sim"), nullptr);
    EXPECT_EQ(history.latest("bench_sim")->rev, "def5678");
    EXPECT_EQ(history.latest("no_such_label"), nullptr);
}

// --------------------------------------------- damage classification

TEST(PerfHistory, MissingAndEmptyLedgersClassifyAsMissing)
{
    TempDir dir("missing");
    const PerfHistory absent =
        loadPerfHistory((dir.path / "nope.jsonl").string());
    ASSERT_EQ(absent.problems.size(), 1u);
    EXPECT_EQ(absent.problems[0].kind,
              IntegrityProblem::Kind::MissingFile);
    EXPECT_EQ(integrityExitCode(absent.problems), kExitMissing);

    const fs::path empty_path = dir.path / "empty.jsonl";
    writeFile(empty_path, "");
    const PerfHistory empty = loadPerfHistory(empty_path.string());
    ASSERT_EQ(empty.problems.size(), 1u);
    EXPECT_EQ(empty.problems[0].kind,
              IntegrityProblem::Kind::MissingFile);
}

TEST(PerfHistory, DamagedLinesClassifyAndGoodLinesStillLoad)
{
    TempDir dir("damage");
    const fs::path path = dir.path / "PERF.jsonl";
    const std::string good = perfSampleToJsonLine(makeSample());

    // Truncated write, bad magic, version skew, binary garbage — each
    // classified; the good lines around them still load.
    std::string skew = good;
    const size_t at = skew.find("\"perf_version\": 1");
    ASSERT_NE(at, std::string::npos);
    skew.replace(at, 17, "\"perf_version\": 999");
    writeFile(path, good +
                        good.substr(0, good.size() / 2) + "\n" +
                        "{\"not_a_perf_sample\": true}\n" +
                        skew +
                        "\x01\x02\xff garbage\n" +
                        good);

    const PerfHistory history = loadPerfHistory(path.string());
    EXPECT_EQ(history.samples.size(), 2u);
    ASSERT_EQ(history.problems.size(), 4u);
    EXPECT_EQ(history.problems[0].kind, IntegrityProblem::Kind::Corrupt);
    EXPECT_EQ(history.problems[1].kind, IntegrityProblem::Kind::Corrupt);
    EXPECT_EQ(history.problems[2].kind,
              IntegrityProblem::Kind::Mismatch);
    EXPECT_EQ(history.problems[3].kind, IntegrityProblem::Kind::Corrupt);
    // Problems carry the file:line locus for the CI log.
    EXPECT_NE(history.problems[0].message.find(":2:"),
              std::string::npos);
    // Any corruption gates as kExitCorrupt.
    EXPECT_EQ(integrityExitCode(history.problems), kExitCorrupt);
}

// ------------------------------------------------------- noise math

TEST(PerfNoise, CoefficientOfVariationHandMath)
{
    // {100, 102, 98}: mean 100, sample stddev sqrt((0+4+4)/2) = 2.
    const PerfNoise noise = perfNoise({100.0, 102.0, 98.0});
    EXPECT_DOUBLE_EQ(noise.mean, 100.0);
    EXPECT_DOUBLE_EQ(noise.stddev, 2.0);
    EXPECT_DOUBLE_EQ(noise.cv, 0.02);

    const PerfNoise single = perfNoise({5.0});
    EXPECT_DOUBLE_EQ(single.mean, 5.0);
    EXPECT_DOUBLE_EQ(single.stddev, 0.0);
    EXPECT_DOUBLE_EQ(single.cv, 0.0);

    const PerfNoise zero = perfNoise({0.0, 0.0});
    EXPECT_DOUBLE_EQ(zero.cv, 0.0);
}

// ----------------------------------------------- directions / gating

TEST(PerfMetrics, DirectionAndDefaultGating)
{
    EXPECT_EQ(perfMetricDirection("t4.sessions_per_sec"),
              MetricDirection::HigherIsBetter);
    EXPECT_EQ(perfMetricDirection("t4.parallel_efficiency"),
              MetricDirection::HigherIsBetter);
    EXPECT_EQ(perfMetricDirection("t2.execute_ms"),
              MetricDirection::LowerIsBetter);
    EXPECT_EQ(perfMetricDirection("t2.cache_lock_waits"),
              MetricDirection::LowerIsBetter);
    EXPECT_EQ(perfMetricDirection("t2.duplicate_synthesis"),
              MetricDirection::LowerIsBetter);
    EXPECT_EQ(perfMetricDirection("quality.ebs.violation_rate"),
              MetricDirection::LowerIsBetter);

    EXPECT_TRUE(perfMetricGatedByDefault("t4.sessions_per_sec"));
    EXPECT_TRUE(perfMetricGatedByDefault("t4.parallel_efficiency"));
    EXPECT_TRUE(perfMetricGatedByDefault("quality.ebs.violation_rate"));
    // Attribution counters are advisory: compared, never gate-failing.
    EXPECT_FALSE(perfMetricGatedByDefault("t2.execute_ms"));
    EXPECT_FALSE(perfMetricGatedByDefault("t2.cache_lock_waits"));
    EXPECT_FALSE(perfMetricGatedByDefault("t2.duplicate_synthesis"));
}

// ---------------------------------------------- compare / exit codes

TEST(PerfCompare, SelfComparisonIsCleanExitZero)
{
    const PerfSample sample = makeSample();
    const PerfComparison cmp =
        comparePerfSamples(sample, sample, PerfCompareOptions());
    EXPECT_TRUE(cmp.comparable);
    EXPECT_TRUE(cmp.clean());
    EXPECT_EQ(cmp.regressed, 0);
    EXPECT_GT(cmp.identical, 0);
    EXPECT_EQ(perfGateExitCode(cmp), 0);
}

TEST(PerfCompare, GatedRegressionExitsDrift)
{
    const PerfSample base = makeSample();
    PerfSample test = base;
    // 50% throughput collapse at t4: far beyond any noise band.
    test.points[1].set("sessions_per_sec", {1200.0, 1190.0, 1210.0});

    const PerfComparison cmp =
        comparePerfSamples(base, test, PerfCompareOptions());
    EXPECT_TRUE(cmp.comparable);
    EXPECT_FALSE(cmp.clean());
    EXPECT_GE(cmp.regressed, 1);
    EXPECT_EQ(perfGateExitCode(cmp), kExitDrift);

    bool named = false;
    for (const PerfMetricDelta &d : cmp.deltas)
        if (d.name == "t4.sessions_per_sec") {
            named = true;
            EXPECT_TRUE(d.gated);
            EXPECT_EQ(d.outcome, DiffOutcome::Regressed);
        }
    EXPECT_TRUE(named);
}

TEST(PerfCompare, ImprovementPassesAsStaleBaseline)
{
    const PerfSample base = makeSample();
    PerfSample test = base;
    test.points[1].set("sessions_per_sec", {4000.0, 4010.0, 3990.0});

    const PerfComparison cmp =
        comparePerfSamples(base, test, PerfCompareOptions());
    EXPECT_TRUE(cmp.clean());
    EXPECT_GE(cmp.improved, 1);
    EXPECT_EQ(cmp.regressed, 0);
    EXPECT_EQ(perfGateExitCode(cmp), 0);
}

TEST(PerfCompare, AdvisoryRegressionStillExitsZero)
{
    const PerfSample base = makeSample();
    PerfSample test = base;
    // execute_ms doubles — advisory, so recorded but not gate-failing.
    test.points[1].set("execute_ms", {242.5, 240.0, 245.0});

    const PerfComparison cmp =
        comparePerfSamples(base, test, PerfCompareOptions());
    EXPECT_TRUE(cmp.clean());
    EXPECT_EQ(perfGateExitCode(cmp), 0);
    for (const PerfMetricDelta &d : cmp.deltas)
        if (d.name == "t4.execute_ms") {
            EXPECT_FALSE(d.gated);
            EXPECT_EQ(d.outcome, DiffOutcome::Regressed);
        }
}

TEST(PerfCompare, ExplicitMetricSelectionGatesAdvisory)
{
    const PerfSample base = makeSample();
    PerfSample test = base;
    test.points[1].set("execute_ms", {242.5, 240.0, 245.0});

    PerfCompareOptions options;
    options.metrics = {"t4.execute_ms"};
    const PerfComparison cmp = comparePerfSamples(base, test, options);
    EXPECT_FALSE(cmp.clean());
    EXPECT_EQ(perfGateExitCode(cmp), kExitDrift);
}

TEST(PerfCompare, NoiseBandScalesWithReplicateCv)
{
    // Noiseless base, 3% drop: outside the 2% floor -> Regressed.
    PerfSample base = makeSample();
    base.points = {base.points[1]};
    base.points[0].metrics.clear();
    base.points[0].set("sessions_per_sec", {1000.0, 1000.0, 1000.0});
    base.quality.clear();
    PerfSample test = base;
    test.points[0].set("sessions_per_sec", {970.0, 970.0, 970.0});
    const PerfComparison tight =
        comparePerfSamples(base, test, PerfCompareOptions());
    EXPECT_FALSE(tight.clean());

    // Same 3% drop under 2% CV: band = 3 sigmas x 0.02 = 6% -> within.
    base.points[0].set("sessions_per_sec", {1000.0, 1020.0, 980.0});
    const PerfComparison loose =
        comparePerfSamples(base, test, PerfCompareOptions());
    EXPECT_TRUE(loose.clean());
    EXPECT_EQ(perfGateExitCode(loose), 0);
}

TEST(PerfCompare, QualityMetricsAreExactByDefault)
{
    const PerfSample base = makeSample();
    PerfSample test = base;
    test.quality[1].second = 0.051;  // tiny violation-rate increase

    const PerfComparison cmp =
        comparePerfSamples(base, test, PerfCompareOptions());
    EXPECT_FALSE(cmp.clean());
    EXPECT_EQ(perfGateExitCode(cmp), kExitDrift);

    // A quality improvement passes.
    test.quality[1].second = 0.049;
    EXPECT_TRUE(
        comparePerfSamples(base, test, PerfCompareOptions()).clean());
}

TEST(PerfCompare, FingerprintOrConfigMismatchExitsCorrupt)
{
    const PerfSample base = makeSample();

    PerfSample other_machine = base;
    other_machine.machine = "Darwin-arm64-10cpu";
    const PerfComparison machine_cmp =
        comparePerfSamples(base, other_machine, PerfCompareOptions());
    EXPECT_FALSE(machine_cmp.comparable);
    ASSERT_FALSE(machine_cmp.problems.empty());
    EXPECT_EQ(machine_cmp.problems[0].kind,
              IntegrityProblem::Kind::Mismatch);
    EXPECT_EQ(perfGateExitCode(machine_cmp), kExitCorrupt);

    PerfSample other_config = base;
    other_config.config = "cfg-ffffffffffffffff";
    EXPECT_EQ(perfGateExitCode(comparePerfSamples(
                  base, other_config, PerfCompareOptions())),
              kExitCorrupt);

    PerfSample other_label = base;
    other_label.label = "stress";
    EXPECT_EQ(perfGateExitCode(comparePerfSamples(
                  base, other_label, PerfCompareOptions())),
              kExitCorrupt);
}

TEST(PerfCompare, OneSidedMetricsAreNotesNotFailures)
{
    const PerfSample base = makeSample();
    PerfSample test = base;
    test.points[1].set("persist_lock_waits", {3.0, 4.0, 2.0});

    const PerfComparison cmp =
        comparePerfSamples(base, test, PerfCompareOptions());
    EXPECT_TRUE(cmp.comparable);
    EXPECT_GE(cmp.missing, 1);
    EXPECT_TRUE(cmp.clean());
}

// ------------------------------------------- calibrated tolerances

TEST(Tolerance, JsonRoundTripAndVersionSkew)
{
    ToleranceSpec spec;
    spec.sigmas = 4.0;
    spec.replicates = 5;
    spec.widen("sessions_per_sec", 0.08, 0.0);
    spec.widen("mean_energy_mj", 0.015, 0.5);

    const std::string json = toleranceSpecToJson(spec);
    const auto parsed = parseToleranceSpec(json);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_DOUBLE_EQ(parsed->sigmas, 4.0);
    EXPECT_EQ(parsed->replicates, 5);
    ASSERT_NE(parsed->find("sessions_per_sec"), nullptr);
    EXPECT_DOUBLE_EQ(parsed->find("sessions_per_sec")->rel, 0.08);
    EXPECT_DOUBLE_EQ(parsed->find("mean_energy_mj")->abs, 0.5);
    EXPECT_EQ(parsed->find("unknown_metric"), nullptr);

    // widen() never narrows.
    ToleranceSpec widened = *parsed;
    widened.widen("sessions_per_sec", 0.02, 0.0);
    EXPECT_DOUBLE_EQ(widened.find("sessions_per_sec")->rel, 0.08);

    std::string skew = json;
    const size_t at = skew.find("\"tolerance_version\": 1");
    ASSERT_NE(at, std::string::npos);
    skew.replace(at, 22, "\"tolerance_version\": 99");
    EXPECT_FALSE(parseToleranceSpec(skew).has_value());
    EXPECT_FALSE(parseToleranceSpec("not json").has_value());
}

TEST(Tolerance, CalibratedBandWidensThePerfGate)
{
    // A 3% drop fails under default noise-free bands but passes once a
    // calibrated spec declares 10% as normal for that metric.
    PerfSample base = makeSample();
    base.points[0].set("sessions_per_sec", {1000.0, 1000.0, 1000.0});
    base.points[1].set("sessions_per_sec", {900.0, 900.0, 900.0});
    PerfSample test = base;
    test.points[1].set("sessions_per_sec", {873.0, 873.0, 873.0});

    EXPECT_FALSE(
        comparePerfSamples(base, test, PerfCompareOptions()).clean());

    ToleranceSpec spec;
    // Unqualified name: the gate strips the "t<threads>." qualifier.
    spec.widen("sessions_per_sec", 0.10, 0.0);
    PerfCompareOptions options;
    options.tolerance = &spec;
    const PerfComparison cmp = comparePerfSamples(base, test, options);
    EXPECT_TRUE(cmp.clean());
    EXPECT_EQ(perfGateExitCode(cmp), 0);
}

TEST(Tolerance, CalibrationDerivesBandsFromReplicateReports)
{
    // Three replicates whose single cell varies mean_energy_mj as
    // {100, 102, 98}: stddev 2, mean 100 -> rel band = 3 x 0.02.
    const auto makeReport = [](double energy) {
        FleetReport r;
        r.baseSeed = 42;
        r.seedMode = "fleet";
        r.users = 3;
        r.sessions = 3;
        r.events = 100;
        r.devices = {"Exynos 5410"};
        r.apps = {"cnn"};
        r.schedulers = {"EBS"};
        CellSummary c;
        c.device = "Exynos 5410";
        c.app = "cnn";
        c.scheduler = "EBS";
        c.sessions = 3;
        c.events = 100;
        c.meanEnergyMj = energy;
        r.cells.push_back(c);
        return r;
    };
    std::vector<FleetReport> replicates = {
        makeReport(100.0), makeReport(102.0), makeReport(98.0)};
    std::vector<std::string> notes;
    const ToleranceSpec spec =
        calibrateTolerances(replicates, 3.0, &notes);
    EXPECT_EQ(spec.replicates, 3);
    const MetricTolerance *band = spec.find("mean_energy_mj");
    ASSERT_NE(band, nullptr);
    EXPECT_NEAR(band->rel, 0.06, 1e-12);

    // The same spec feeds the report diff: a 5% energy drift passes
    // under the calibrated band, fails under the default 1e-6.
    const FleetReport base = makeReport(100.0);
    const FleetReport drifted = makeReport(105.0);
    DiffOptions loose;
    loose.tolerance = &spec;
    loose.relTolerance = 0.0;
    EXPECT_TRUE(diffReports(base, drifted, loose).clean());
    EXPECT_FALSE(diffReports(base, drifted, DiffOptions()).clean());
}

// ------------------------------------------------ scaling attribution

TEST(Scaling, ParallelEfficiencyHandMath)
{
    PerfSample sample;
    PerfPoint t1;
    t1.threads = 1;
    t1.set("sessions_per_sec", {100.0, 100.0});
    PerfPoint t4;
    t4.threads = 4;
    t4.set("sessions_per_sec", {200.0, 220.0});
    sample.points = {t1, t4};

    derivePerfParallelEfficiency(sample);
    const std::vector<double> *eff1 =
        sample.point(1)->find("parallel_efficiency");
    ASSERT_NE(eff1, nullptr);
    EXPECT_DOUBLE_EQ((*eff1)[0], 1.0);
    const std::vector<double> *eff4 =
        sample.point(4)->find("parallel_efficiency");
    ASSERT_NE(eff4, nullptr);
    ASSERT_EQ(eff4->size(), 2u);
    EXPECT_DOUBLE_EQ((*eff4)[0], 0.5);    // 200 / (4 x 100)
    EXPECT_DOUBLE_EQ((*eff4)[1], 0.55);   // 220 / (4 x 100)

    // Without a t1 anchor the derivation is a no-op.
    PerfSample unanchored;
    unanchored.points = {t4};
    derivePerfParallelEfficiency(unanchored);
    EXPECT_EQ(unanchored.point(4)->find("parallel_efficiency"), nullptr);
}

TEST(Scaling, ContentionGuardCountsBlockedAcquisitions)
{
    std::mutex mutex;
    LockContention ledger;
    {
        // Uncontended: the try_lock fast path records nothing.
        ContentionGuard guard(mutex, ledger);
    }
    EXPECT_EQ(ledger.waits, 0u);
    EXPECT_DOUBLE_EQ(ledger.waitMs, 0.0);

    // Contended: a thread arriving while the mutex is held must block
    // and record exactly one wait (with the blocked time accrued).
    std::unique_lock<std::mutex> holder(mutex);
    std::thread blocked([&] { ContentionGuard guard(mutex, ledger); });
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    holder.unlock();
    blocked.join();
    EXPECT_EQ(ledger.waits, 1u);
    EXPECT_GT(ledger.waitMs, 0.0);

    ledger.reset();
    EXPECT_EQ(ledger.waits, 0u);
    EXPECT_DOUBLE_EQ(ledger.waitMs, 0.0);
}

/** The golden mini sweep (tools/regen_golden.sh; keep in sync). */
FleetConfig
miniConfig(int threads)
{
    FleetConfig config;
    config.schedulers = {SchedulerKind::Ebs, SchedulerKind::Interactive};
    config.apps = {appByName("cnn"), appByName("social_feed")};
    config.users = 3;
    config.threads = threads;
    config.baseSeed = 0xf1ee7;
    return config;
}

TEST(Scaling, SingleThreadRunsAreContentionFree)
{
    TelemetryRegistry telemetry;
    FleetConfig config = miniConfig(1);
    config.telemetry = &telemetry;
    FleetRunner runner(std::move(config));
    const FleetOutcome outcome = runner.run();
    // One worker, no overlap: try_lock always wins, deterministically.
    EXPECT_EQ(outcome.traceCacheContention.waits, 0u);
    EXPECT_EQ(outcome.persistContention.waits, 0u);

    const RunTelemetry t = makeRunTelemetry(runner.config(), outcome);
    EXPECT_EQ(t.cacheLockWaits, 0u);
    EXPECT_EQ(t.persistLockWaits, 0u);
    ASSERT_EQ(t.workers.size(), 1u);
    EXPECT_EQ(t.workers[0].tasks, t.poolTasks);
}

TEST(Scaling, WorkerAccountingCoversEveryPoolTask)
{
    TelemetryRegistry telemetry;
    FleetConfig config = miniConfig(3);
    config.telemetry = &telemetry;
    FleetRunner runner(std::move(config));
    const FleetOutcome outcome = runner.run();
    const RunTelemetry t = makeRunTelemetry(runner.config(), outcome);

    ASSERT_EQ(t.workers.size(), 3u);
    uint64_t tasks = 0;
    for (const WorkerScaling &w : t.workers) {
        tasks += w.tasks;
        EXPECT_GE(w.busyMs, 0.0);
        EXPECT_GE(w.idleMs, 0.0);
        EXPECT_GE(w.queueWaitMs, 0.0);
    }
    EXPECT_EQ(tasks, t.poolTasks);
    EXPECT_EQ(t.sessions, 12u);
}

TEST(Scaling, DuplicateSynthesisSurfacesInTelemetry)
{
    TelemetryRegistry telemetry;
    FleetConfig config = miniConfig(2);
    config.telemetry = &telemetry;
    FleetRunner runner(std::move(config));
    const FleetOutcome outcome = runner.run();
    const RunTelemetry t = makeRunTelemetry(runner.config(), outcome);
    // The counter exists and is consistent between outcome and summary
    // (its value is scheduling-dependent: race losers synthesize twice).
    EXPECT_EQ(t.cacheDuplicateSynthesis,
              outcome.traceCacheDuplicateSynthesis);
}

// ------------------------------------------------ no-feedback contract

/** Run @p config and serialize its report (JSON + CSV concatenated). */
std::string
reportBytes(FleetConfig config)
{
    FleetRunner runner(std::move(config));
    const FleetOutcome outcome = runner.run();
    EXPECT_TRUE(outcome.diagnostics.empty());
    const FleetReport report =
        makeFleetReport(runner.config(), outcome.metrics);
    return JsonReporter::toString(report) + CsvReporter::toString(report);
}

TEST(NoFeedback, ContentionInstrumentationNeverChangesReportBytes)
{
    // The contention ledgers and worker accounting ride the armed
    // path; arming telemetry must still not move a single report byte,
    // serial or heavily threaded.
    const std::string bare = reportBytes(miniConfig(1));
    for (const int threads : {1, 8}) {
        TelemetryRegistry telemetry;
        FleetConfig armed = miniConfig(threads);
        armed.telemetry = &telemetry;
        EXPECT_EQ(reportBytes(std::move(armed)), bare)
            << "instrumented run diverged at threads=" << threads;
    }
}

} // namespace
} // namespace pes
