/**
 * @file
 * Tests for the population subsystem and the percentile sketches it
 * rides on: sketch merge algebra (associative, commutative, partition-
 * invariant), byte-stable serialization, the accuracy bound against
 * exact percentiles, mixture-spec identity (tags, digests, classified
 * load diagnostics), sampler determinism, and the fleet-level
 * guarantees — population sweeps byte-identical across thread counts,
 * shard splits and coordinator plans, with cross-population stores and
 * diffs refused.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <map>
#include <vector>

#include "coordinator/coordinator.hh"
#include "coordinator/lease_queue.hh"
#include "population/population_spec.hh"
#include "results/report_diff.hh"
#include "results/result_reduce.hh"
#include "results/result_store.hh"
#include "runner/fleet_runner.hh"
#include "runner/reporters.hh"
#include "util/psketch.hh"
#include "util/rng.hh"

namespace fs = std::filesystem;

namespace pes {
namespace {

/** Unique scratch directory, removed on scope exit. */
struct TempDir
{
    explicit TempDir(const std::string &name)
        : path(fs::temp_directory_path() / ("pes_population_test_" + name))
    {
        fs::remove_all(path);
        fs::create_directories(path);
    }
    ~TempDir() { fs::remove_all(path); }

    std::string str() const { return path.string(); }

    fs::path path;
};

std::string
sketchBytes(const PercentileSketch &s)
{
    std::string out;
    s.appendTo(out);
    return out;
}

/** Deterministic lognormal-ish latency stream for sketch tests. */
std::vector<double>
latencySamples(size_t n, uint64_t seed = 0x5e7c4)
{
    std::vector<double> xs;
    xs.reserve(n);
    Rng rng(seed);
    for (size_t i = 0; i < n; ++i)
        xs.push_back(rng.lognormal(120.0, 0.9));
    return xs;
}

// ------------------------------------------------------------ sketches

TEST(PercentileSketch, MergeIsAssociativeAndCommutative)
{
    const std::vector<double> xs = latencySamples(3000);
    PercentileSketch a, b, c;
    for (size_t i = 0; i < xs.size(); ++i)
        (i % 3 == 0 ? a : i % 3 == 1 ? b : c).add(xs[i]);

    PercentileSketch ab_c = a;
    ab_c.merge(b);
    ab_c.merge(c);

    PercentileSketch bc = b;
    bc.merge(c);
    PercentileSketch a_bc = a;
    a_bc.merge(bc);

    PercentileSketch cba = c;
    cba.merge(b);
    cba.merge(a);

    EXPECT_EQ(ab_c, a_bc);
    EXPECT_EQ(ab_c, cba);
    EXPECT_EQ(sketchBytes(ab_c), sketchBytes(a_bc));
    EXPECT_EQ(sketchBytes(ab_c), sketchBytes(cba));
}

TEST(PercentileSketch, AnyPartitioningMergesToTheWholeStreamState)
{
    const std::vector<double> xs = latencySamples(5000);
    PercentileSketch whole;
    for (const double x : xs)
        whole.add(x);

    for (const size_t parts : {2u, 7u, 31u}) {
        std::vector<PercentileSketch> shards(parts);
        for (size_t i = 0; i < xs.size(); ++i)
            shards[i % parts].add(xs[i]);
        // Merge in descending order — opposite of shard order.
        PercentileSketch merged;
        for (size_t k = parts; k-- > 0;)
            merged.merge(shards[k]);
        EXPECT_EQ(merged, whole) << parts << " parts";
        EXPECT_EQ(sketchBytes(merged), sketchBytes(whole));
    }
}

TEST(PercentileSketch, SerializationRoundTripsAndRejectsTruncation)
{
    PercentileSketch sketch;
    for (const double x : latencySamples(1000))
        sketch.add(x);
    sketch.add(0.0);  // exercise the zero bucket

    const std::string bytes = sketchBytes(sketch);
    ByteReader reader(bytes);
    PercentileSketch parsed;
    ASSERT_TRUE(PercentileSketch::readFrom(reader, parsed));
    EXPECT_EQ(parsed, sketch);
    EXPECT_EQ(sketchBytes(parsed), bytes);

    // An empty sketch round-trips too (the .psum fixed footprint).
    const PercentileSketch empty;
    const std::string empty_bytes = sketchBytes(empty);
    ByteReader er(empty_bytes);
    PercentileSketch eparsed;
    ASSERT_TRUE(PercentileSketch::readFrom(er, eparsed));
    EXPECT_TRUE(eparsed.empty());

    for (const size_t cut :
         {size_t(0), size_t(4), size_t(12), bytes.size() - 1}) {
        const std::string truncated = bytes.substr(0, cut);
        ByteReader tr(truncated);
        PercentileSketch out;
        EXPECT_FALSE(PercentileSketch::readFrom(tr, out)) << cut;
    }
}

TEST(PercentileSketch, QuantilesMeetTheRelativeErrorBound)
{
    std::vector<double> xs = latencySamples(100000);
    PercentileSketch sketch;
    for (const double x : xs)
        sketch.add(x);
    std::sort(xs.begin(), xs.end());

    // Bucketing guarantees ~1/(2*64) relative error on the value; allow
    // a bit over it for the nearest-rank difference between the sketch
    // walk and the exact order statistic.
    const double bound = 1.5 / (2.0 * PercentileSketch::kSubBuckets);
    for (const double q : {0.50, 0.95, 0.99}) {
        const double exact =
            xs[static_cast<size_t>(q * (xs.size() - 1))];
        const double approx = sketch.quantile(q);
        EXPECT_NEAR(approx / exact, 1.0, bound) << "q=" << q;
    }
    EXPECT_LE(sketch.binCount(), 2048u);  // bounded memory, 1e5 samples
}

// ----------------------------------------------------- spec & identity

TEST(PopulationSpec, TagRoundTripsNameAndDigest)
{
    for (const PopulationSpec &spec : populationRegistry()) {
        const std::string tag = populationTag(spec);
        std::string name;
        uint64_t digest = 0;
        ASSERT_TRUE(parsePopulationTag(tag, &name, &digest)) << tag;
        EXPECT_EQ(name, spec.name);
        EXPECT_EQ(digest, populationDigest(spec));
    }
    std::string name;
    uint64_t digest = 0;
    EXPECT_FALSE(parsePopulationTag("", &name, &digest));
    EXPECT_FALSE(parsePopulationTag("no-digest", &name, &digest));
}

TEST(PopulationSpec, CanonicalTextRoundTripsToTheSameDigest)
{
    const TempDir dir("spec_roundtrip");
    for (const PopulationSpec &spec : populationRegistry()) {
        const std::string path = (dir.path / "spec.json").string();
        std::ofstream(path) << populationSpecText(spec);
        std::vector<IntegrityProblem> problems;
        const auto loaded = loadPopulationSpec(path, problems);
        ASSERT_TRUE(loaded.has_value())
            << spec.name << ": "
            << (problems.empty() ? "?" : problems[0].message);
        EXPECT_EQ(populationDigest(*loaded), populationDigest(spec))
            << spec.name;
        EXPECT_EQ(populationTag(*loaded), populationTag(spec));
    }
}

TEST(PopulationSpec, LoadFailuresAreClassified)
{
    const TempDir dir("spec_diag");
    std::vector<IntegrityProblem> problems;

    // Missing file -> exit 3.
    EXPECT_FALSE(loadPopulationSpec((dir.path / "absent.json").string(),
                                    problems)
                     .has_value());
    ASSERT_FALSE(problems.empty());
    EXPECT_EQ(integrityExitCode(problems), 3);

    // Malformed JSON -> exit 4.
    const std::string garbled = (dir.path / "garbled.json").string();
    std::ofstream(garbled) << "{ not json";
    problems.clear();
    EXPECT_FALSE(loadPopulationSpec(garbled, problems).has_value());
    ASSERT_FALSE(problems.empty());
    EXPECT_EQ(integrityExitCode(problems), 4);

    // Unknown registry name -> exit 4.
    problems.clear();
    EXPECT_FALSE(resolvePopulation("no_such_mixture", problems)
                     .has_value());
    ASSERT_FALSE(problems.empty());
    EXPECT_EQ(integrityExitCode(problems), 4);

    // A built-in resolves clean.
    problems.clear();
    EXPECT_TRUE(resolvePopulation("commuter_mix", problems).has_value());
    EXPECT_TRUE(problems.empty());
}

TEST(PopulationSpec, SamplerIsDeterministicAndCoversEveryCohort)
{
    const PopulationSpec *spec = findPopulation("city_blend");
    ASSERT_NE(spec, nullptr);

    std::map<int, int> cohorts;
    for (int i = 0; i < 2000; ++i) {
        const uint64_t seed =
            populationUserSeed(populationDigest(*spec), 0xf1ee7, i);
        const UserTraits once = samplePopulationTraits(*spec, seed);
        const UserTraits again = samplePopulationTraits(*spec, seed);
        EXPECT_EQ(once.cohort, again.cohort);
        EXPECT_EQ(once.scale.thinkScale, again.scale.thinkScale);
        EXPECT_EQ(once.scale.moveAffinity, again.scale.moveAffinity);
        EXPECT_EQ(once.scale.tapAffinity, again.scale.tapAffinity);
        EXPECT_EQ(once.scale.navAffinity, again.scale.navAffinity);
        EXPECT_EQ(once.severity, again.severity);
        ++cohorts[once.cohort];

        for (const double s :
             {once.scale.thinkScale, once.scale.moveAffinity,
              once.scale.tapAffinity, once.scale.navAffinity}) {
            EXPECT_GE(s, 0.05);
            EXPECT_LE(s, 8.0);
        }
    }
    EXPECT_EQ(cohorts.size(), spec->cohorts.size())
        << "2000 users should hit every cohort of the mixture";
}

// --------------------------------------------- fleet-level determinism

/** Small population sweep: two schedulers, one app, six users. */
FleetConfig
populationFleet(const PopulationSpec &spec)
{
    FleetConfig config;
    config.schedulers = {SchedulerKind::Ebs, SchedulerKind::Interactive};
    config.apps = {appByName("cnn")};
    config.users = 6;
    config.baseSeed = 0xf1ee7;
    config.population = &spec;
    config.populationTag = populationTag(spec);
    config.populationDigest = populationDigest(spec);
    return config;
}

std::string
reportBytes(const FleetConfig &config, const MetricsAggregator &metrics)
{
    return JsonReporter::toString(makeFleetReport(config, metrics)) +
        CsvReporter::toString(makeFleetReport(config, metrics));
}

std::string
storeReportBytes(const ResultStore &store)
{
    StoreReduction reduction;
    std::string error;
    EXPECT_TRUE(reduceStore(store, reduction, &error)) << error;
    EXPECT_TRUE(reduction.problems.empty())
        << (reduction.problems.empty() ? "" : reduction.problems[0]);
    return JsonReporter::toString(
               makeStoreReport(store, reduction.metrics)) +
        CsvReporter::toString(makeStoreReport(store, reduction.metrics));
}

TEST(PopulationFleet, ReportsAreThreadCountInvariant)
{
    const PopulationSpec *spec = findPopulation("commuter_mix");
    ASSERT_NE(spec, nullptr);

    FleetConfig t1 = populationFleet(*spec);
    t1.threads = 1;
    FleetRunner r1(t1);
    const std::string bytes1 = reportBytes(r1.config(), r1.run().metrics);

    FleetConfig t8 = populationFleet(*spec);
    t8.threads = 8;
    FleetRunner r8(t8);
    const std::string bytes8 = reportBytes(r8.config(), r8.run().metrics);

    EXPECT_EQ(bytes1, bytes8);
    EXPECT_NE(bytes1.find(populationTag(*spec)), std::string::npos)
        << "the report must carry the population tag";
}

TEST(PopulationFleet, PopulationChangesTheTracesNotJustTheTag)
{
    const PopulationSpec *spec = findPopulation("evening_binge");
    ASSERT_NE(spec, nullptr);

    FleetConfig with = populationFleet(*spec);
    FleetRunner rw(with);
    const FleetReport with_report =
        makeFleetReport(rw.config(), rw.run().metrics);

    FleetConfig without = populationFleet(*spec);
    without.population = nullptr;
    without.populationTag.clear();
    without.populationDigest = 0;
    FleetRunner ro(without);
    const FleetReport without_report =
        makeFleetReport(ro.config(), ro.run().metrics);

    ASSERT_EQ(with_report.cells.size(), without_report.cells.size());
    bool differs = false;
    for (size_t i = 0; i < with_report.cells.size(); ++i)
        differs |= with_report.cells[i].events !=
            without_report.cells[i].events;
    EXPECT_TRUE(differs)
        << "a binge-heavy mixture must reshape the generated traces";
}

TEST(PopulationFleet, ShardSplitMergeEqualsTheWholeRun)
{
    const PopulationSpec *spec = findPopulation("commuter_mix");
    ASSERT_NE(spec, nullptr);
    const TempDir dir("pop_shards");
    std::string error;

    FleetConfig whole = populationFleet(*spec);
    FleetRunner whole_runner(whole);
    const std::string whole_bytes =
        reportBytes(whole_runner.config(), whole_runner.run().metrics);

    std::vector<std::string> shard_dirs;
    for (int k = 0; k < 2; ++k) {
        FleetConfig shard = populationFleet(*spec);
        shard.shardIndex = k;
        shard.shardCount = 2;
        shard.threads = 1 + k;
        shard.checkpointEvery = 2;
        const std::string shard_dir =
            (dir.path / ("s" + std::to_string(k))).string();
        auto store = ResultStore::create(
            shard_dir, SweepSpec::fromConfig(shard), &error);
        ASSERT_TRUE(store.has_value()) << error;
        shard.resultStore = &*store;
        FleetRunner runner(shard);
        EXPECT_TRUE(runner.run().diagnostics.empty());
        shard_dirs.push_back(shard_dir);
    }

    auto merged = ResultStore::create((dir.path / "merged").string(),
                                      SweepSpec::fromConfig(whole),
                                      &error);
    ASSERT_TRUE(merged.has_value()) << error;
    for (const std::string &shard_dir : shard_dirs) {
        auto src = ResultStore::open(shard_dir, &error);
        ASSERT_TRUE(src.has_value()) << error;
        ASSERT_TRUE(merged->mergeFrom(*src, &error)) << error;
    }
    EXPECT_EQ(storeReportBytes(*merged), whole_bytes);
}

TEST(PopulationFleet, CoordinatorPlanReproducesTheDirectRunBytes)
{
    const PopulationSpec *spec = findPopulation("commuter_mix");
    ASSERT_NE(spec, nullptr);
    const TempDir dir("pop_queue");
    std::string error;

    FleetConfig direct = populationFleet(*spec);
    FleetRunner direct_runner(direct);
    const std::string direct_bytes =
        reportBytes(direct_runner.config(), direct_runner.run().metrics);

    // Round-trip the sweep identity through a queue plan on disk — what
    // `pes_coordinator init` writes and `pes_fleet work` reads back.
    QueuePlan plan;
    plan.resultsDir = (dir.path / "results").string();
    plan.grain = 4;
    plan.baseSeed = direct.baseSeed;
    plan.seedMode = "fleet";
    plan.users = direct.users;
    plan.devices = SweepSpec::fromConfig(direct).devices;
    plan.apps = {"cnn"};
    plan.schedulers = SweepSpec::fromConfig(direct).schedulers;
    plan.population = *spec;
    plan.ranges = partitionJobs(direct.jobCount(), plan.grain);
    auto queue =
        LeaseQueue::create((dir.path / "queue").string(), plan, &error);
    ASSERT_TRUE(queue.has_value()) << error;

    auto reopened =
        LeaseQueue::open((dir.path / "queue").string(), &error);
    ASSERT_TRUE(reopened.has_value()) << error;
    ASSERT_TRUE(reopened->plan().population.has_value());
    EXPECT_EQ(populationDigest(*reopened->plan().population),
              populationDigest(*spec));

    FleetConfig from_plan = configOf(reopened->plan());
    EXPECT_EQ(from_plan.populationTag, populationTag(*spec));
    FleetRunner plan_runner(from_plan);
    EXPECT_EQ(reportBytes(plan_runner.config(),
                          plan_runner.run().metrics),
              direct_bytes);
}

// ----------------------------------------------------------- refusals

TEST(PopulationFleet, StoresAndDiffsRefuseToMixPopulations)
{
    const PopulationSpec *commuters = findPopulation("commuter_mix");
    const PopulationSpec *bingers = findPopulation("evening_binge");
    ASSERT_NE(commuters, nullptr);
    ASSERT_NE(bingers, nullptr);
    const TempDir dir("pop_refusal");
    std::string error;

    const FleetConfig a = populationFleet(*commuters);
    const FleetConfig b = populationFleet(*bingers);

    // A store created for one population refuses the other...
    auto store = ResultStore::create((dir.path / "store").string(),
                                     SweepSpec::fromConfig(a), &error);
    ASSERT_TRUE(store.has_value()) << error;
    EXPECT_FALSE(ResultStore::create((dir.path / "store").string(),
                                     SweepSpec::fromConfig(b), &error)
                     .has_value());
    EXPECT_NE(error.find("population"), std::string::npos) << error;

    // ...and merge refuses a foreign-population source store.
    auto foreign = ResultStore::create((dir.path / "foreign").string(),
                                       SweepSpec::fromConfig(b), &error);
    ASSERT_TRUE(foreign.has_value()) << error;
    EXPECT_FALSE(store->mergeFrom(*foreign, &error));

    // Diffs across populations are incomparable: classified exit 4.
    FleetRunner ra(a);
    const FleetReport report_a =
        makeFleetReport(ra.config(), ra.run().metrics);
    FleetRunner rb(b);
    const FleetReport report_b =
        makeFleetReport(rb.config(), rb.run().metrics);
    const DiffSummary summary =
        diffReports(report_a, report_b, DiffOptions{});
    EXPECT_FALSE(summary.comparable);
    EXPECT_EQ(diffExitCode(summary), 4);
}

} // namespace
} // namespace pes
