/**
 * @file
 * Tests for the result-persistence subsystem: .psum round-trip
 * fidelity, failure diagnostics (truncation, corruption, version skew,
 * missing parts), the ResultStore manifest and merge, deterministic
 * reduction, and the fleet-level guarantees — JSON/CSV reports are
 * byte-identical across (a) a single whole run, (b) a sharded run plus
 * merge, and (c) a killed-and-resumed run, at any thread count, and
 * trace-cache eviction never changes report bytes.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "results/result_format.hh"
#include "results/result_reduce.hh"
#include "results/result_store.hh"
#include "runner/fleet_runner.hh"
#include "runner/reporters.hh"
#include "trace/app_profile.hh"

namespace fs = std::filesystem;

namespace pes {
namespace {

/** Unique scratch directory, removed on scope exit. */
struct TempDir
{
    explicit TempDir(const std::string &name)
        : path(fs::temp_directory_path() / ("pes_results_test_" + name))
    {
        fs::remove_all(path);
        fs::create_directories(path);
    }
    ~TempDir() { fs::remove_all(path); }

    std::string str() const { return path.string(); }

    fs::path path;
};

SessionRecord
makeRecord(const std::string &scheduler = "ebs", uint32_t user = 0)
{
    SessionRecord rec;
    rec.device = "Exynos 5410";
    rec.app = "cnn";
    rec.scheduler = scheduler;
    rec.userIndex = user;
    rec.userSeed = 0x9e3779b97f4a7c15ull + user;
    rec.stats.events = 37;
    rec.stats.violations = 3;
    rec.stats.totalEnergyMj = 1234.5678901234567;
    rec.stats.busyEnergyMj = 1000.1;
    rec.stats.idleEnergyMj = 200.0000000000002;
    rec.stats.overheadEnergyMj = 4.25;
    rec.stats.wasteEnergyMj = 30.125;
    rec.stats.durationMs = 60000.5;
    rec.stats.meanLatencyMs = 41.999999999999993;  // not representable
    rec.stats.p95LatencyMs = 97.75;
    rec.stats.maxLatencyMs = 203.0;
    rec.stats.predictionsMade = 30;
    rec.stats.predictionsCorrect = 26;
    rec.stats.mispredictions = 4;
    rec.stats.mispredictWasteMs = 17.375;
    rec.stats.avgQueueLength = 1.6180339887498949;
    rec.stats.fellBackToReactive = user % 2 == 1;
    return rec;
}

PsumParams
testParams()
{
    return {{"writer", "unit test"}, {"shard", "0/1"}};
}

SweepSpec
testSweep(int users = 2)
{
    SweepSpec sweep;
    sweep.baseSeed = FleetConfig::kDefaultBaseSeed;
    sweep.seedMode = "fleet";
    sweep.users = users;
    sweep.devices = {"Exynos 5410"};
    sweep.apps = {"cnn"};
    sweep.schedulers = {"interactive", "ebs"};
    return sweep;
}

// --------------------------------------------------- .psum round trips

TEST(PsumFormat, RoundTripPreservesEveryField)
{
    std::vector<SessionRecord> records;
    records.push_back(makeRecord("ebs", 0));
    records.push_back(makeRecord("interactive", 1));
    const PsumParams params = testParams();

    PsumReader reader;
    ASSERT_TRUE(reader.openBytes(PsumWriter::toBytes(records, params)))
        << reader.error();
    EXPECT_EQ(reader.header().version, kPsumVersion);
    EXPECT_EQ(reader.header().params, params);
    EXPECT_EQ(reader.header().recordCount, records.size());
    EXPECT_EQ(reader.header().recordsChecksum,
              recordsChecksum(records));

    const auto loaded = reader.readRecords();
    ASSERT_TRUE(loaded.has_value()) << reader.error();
    ASSERT_EQ(loaded->size(), records.size());
    // Exact equality: every double survives as its bit pattern.
    for (size_t i = 0; i < records.size(); ++i)
        EXPECT_TRUE((*loaded)[i] == records[i]) << "record " << i;
}

TEST(PsumFormat, EmptyBatchRoundTrips)
{
    PsumReader reader;
    ASSERT_TRUE(reader.openBytes(PsumWriter::toBytes({}, {})))
        << reader.error();
    EXPECT_EQ(reader.header().recordCount, 0u);
    const auto loaded = reader.readRecords();
    ASSERT_TRUE(loaded.has_value()) << reader.error();
    EXPECT_TRUE(loaded->empty());
}

TEST(PsumFormat, TruncationFailsCleanlyAtEveryBoundary)
{
    const std::string bytes =
        PsumWriter::toBytes({makeRecord("ebs", 0), makeRecord("ebs", 1)},
                            testParams());
    // Cut inside every section: magic, version, head, records payload,
    // trailing checksum.
    const size_t cuts[] = {0, 2, 5, 10, 30, bytes.size() / 2,
                           bytes.size() - 9, bytes.size() - 1};
    for (const size_t cut : cuts) {
        ASSERT_LT(cut, bytes.size());
        PsumReader reader;
        if (reader.openBytes(bytes.substr(0, cut))) {
            // Head may parse when the cut lands in the records payload;
            // decoding must then fail instead.
            EXPECT_FALSE(reader.readRecords().has_value())
                << "cut at " << cut;
        }
        EXPECT_FALSE(reader.error().empty()) << "cut at " << cut;
    }
}

TEST(PsumFormat, RecordsChecksumMismatchDetected)
{
    std::string bytes = PsumWriter::toBytes({makeRecord()}, testParams());
    bytes[bytes.size() - 12] ^= 0x40;  // inside the records payload

    PsumReader reader;
    ASSERT_TRUE(reader.openBytes(bytes)) << reader.error();
    EXPECT_FALSE(reader.readRecords().has_value());
    EXPECT_NE(reader.error().find("checksum"), std::string::npos)
        << reader.error();
}

TEST(PsumFormat, HeadChecksumMismatchDetected)
{
    std::string bytes = PsumWriter::toBytes({makeRecord()}, testParams());
    bytes[14] ^= 0x01;  // inside the head payload

    PsumReader reader;
    EXPECT_FALSE(reader.openBytes(bytes));
    EXPECT_FALSE(reader.error().empty());
}

TEST(PsumFormat, VersionSkewRejectedWithDiagnostic)
{
    std::string bytes = PsumWriter::toBytes({makeRecord()}, testParams());
    bytes[4] = static_cast<char>(kPsumVersion + 1);

    PsumReader reader;
    EXPECT_FALSE(reader.openBytes(bytes));
    EXPECT_NE(reader.error().find("version"), std::string::npos)
        << reader.error();
}

TEST(PsumFormat, BadMagicRejected)
{
    std::string bytes = PsumWriter::toBytes({makeRecord()}, testParams());
    bytes[0] = 'X';

    PsumReader reader;
    EXPECT_FALSE(reader.openBytes(bytes));
    EXPECT_NE(reader.error().find("magic"), std::string::npos)
        << reader.error();
}

// -------------------------------------------------------- ResultStore

TEST(ResultStore, AppendStreamsAndSurvivesReopen)
{
    const TempDir dir("append");
    std::string error;
    auto store = ResultStore::create(dir.str(), testSweep(), &error);
    ASSERT_TRUE(store.has_value()) << error;

    ASSERT_TRUE(store->appendPart({makeRecord("interactive", 0),
                                   makeRecord("interactive", 1)},
                                  "s0", testParams(), &error))
        << error;
    ASSERT_TRUE(store->appendPart({makeRecord("ebs", 0)}, "s0",
                                  testParams(), &error))
        << error;
    // Empty batches are ignored, not errors.
    ASSERT_TRUE(store->appendPart({}, "s0", testParams(), &error));
    EXPECT_EQ(store->parts().size(), 2u);
    EXPECT_EQ(store->recordCount(), 3u);

    auto reopened = ResultStore::open(dir.str(), &error);
    ASSERT_TRUE(reopened.has_value()) << error;
    EXPECT_TRUE(reopened->sweep() == testSweep());
    EXPECT_EQ(reopened->recordCount(), 3u);

    int seen = 0;
    ASSERT_TRUE(reopened->forEachRecord(
        [&](const SessionRecord &rec) {
            EXPECT_EQ(rec.app, "cnn");
            ++seen;
            return true;
        },
        &error))
        << error;
    EXPECT_EQ(seen, 3);

    std::vector<StoreProblem> problems;
    EXPECT_TRUE(reopened->validate(problems)) << problems.size();
}

TEST(ResultStore, ValidateClassifiesMissingVsCorruptVsMismatch)
{
    const TempDir dir("classify");
    std::string error;
    auto store = ResultStore::create(dir.str(), testSweep(), &error);
    ASSERT_TRUE(store.has_value()) << error;
    ASSERT_TRUE(store->appendPart({makeRecord("ebs", 0)}, "a",
                                  testParams(), &error));
    ASSERT_TRUE(store->appendPart({makeRecord("ebs", 1)}, "b",
                                  testParams(), &error));
    ASSERT_TRUE(store->appendPart({makeRecord("interactive", 0)}, "c",
                                  testParams(), &error));

    fs::remove(dir.path / "part-a-0.psum");
    {
        std::ofstream os(dir.path / "part-b-0.psum",
                         std::ios::binary | std::ios::trunc);
        os << "not a psum file";
    }
    // Swap part c's content for a valid but different batch: parses
    // fine, disagrees with the manifest checksum.
    ASSERT_TRUE(PsumWriter::writeFile({makeRecord("interactive", 1)},
                                      testParams(),
                                      (dir.path / "part-c-0.psum")
                                          .string(),
                                      &error))
        << error;

    auto reopened = ResultStore::open(dir.str(), &error);
    ASSERT_TRUE(reopened.has_value()) << error;
    std::vector<StoreProblem> problems;
    EXPECT_FALSE(reopened->validate(problems));
    ASSERT_EQ(problems.size(), 3u);
    EXPECT_EQ(problems[0].kind, StoreProblem::Kind::MissingFile);
    EXPECT_NE(problems[0].message.find("missing"), std::string::npos);
    EXPECT_EQ(problems[1].kind, StoreProblem::Kind::Corrupt);
    EXPECT_EQ(problems[2].kind, StoreProblem::Kind::Mismatch);
}

TEST(ResultStore, ValidateClassifiesOrphanedParts)
{
    const TempDir dir("orphan");
    std::string error;
    auto store = ResultStore::create(dir.str(), testSweep(), &error);
    ASSERT_TRUE(store.has_value()) << error;
    ASSERT_TRUE(store->appendPart({makeRecord("ebs", 0)}, "a",
                                  testParams(), &error));

    // A crash between a part write and the manifest save leaves a
    // healthy .psum on disk with no row indexing it.
    ASSERT_TRUE(PsumWriter::writeFile({makeRecord("ebs", 1)},
                                      testParams(),
                                      (dir.path / "part-lost.psum")
                                          .string(),
                                      &error))
        << error;

    std::vector<StoreProblem> problems;
    EXPECT_FALSE(store->validate(problems));
    ASSERT_EQ(problems.size(), 1u);
    EXPECT_EQ(problems[0].kind, StoreProblem::Kind::Orphaned);
    EXPECT_NE(problems[0].message.find("part-lost.psum"),
              std::string::npos);
    // Orphans mean content needs reconciling, not re-syncing files.
    EXPECT_EQ(integrityExitCode(problems), kExitCorrupt);
}

TEST(ResultStore, OpenAdoptsReadableOrphansAndRemovesTornOnes)
{
    const TempDir dir("adopt");
    std::string error;
    auto store = ResultStore::create(dir.str(), testSweep(), &error);
    ASSERT_TRUE(store.has_value()) << error;
    ASSERT_TRUE(store->appendPart({makeRecord("ebs", 0)}, "a",
                                  testParams(), &error));

    // One healthy orphan (crash after the write completed) and one
    // torn orphan (crash mid-write / trailing garbage).
    ASSERT_TRUE(PsumWriter::writeFile({makeRecord("ebs", 1)},
                                      testParams(),
                                      (dir.path / "part-lost.psum")
                                          .string(),
                                      &error))
        << error;
    {
        std::ofstream os(dir.path / "part-torn.psum",
                         std::ios::binary | std::ios::trunc);
        os << "half a checkpoint";
    }

    auto reopened = ResultStore::open(dir.str(), &error);
    ASSERT_TRUE(reopened.has_value()) << error;
    std::vector<StoreProblem> problems;
    EXPECT_TRUE(reopened->validate(problems))
        << (problems.empty() ? "" : problems[0].message);
    EXPECT_EQ(reopened->recordCount(), 2u);  // orphan adopted
    EXPECT_FALSE(fs::exists(dir.path / "part-torn.psum"));

    // The adopted record is readable content, not just a row.
    int seen = 0;
    ASSERT_TRUE(reopened->forEachRecord(
        [&](const SessionRecord &) {
            ++seen;
            return true;
        },
        &error))
        << error;
    EXPECT_EQ(seen, 2);
}

TEST(ResultStore, ConcurrentAppendersAllLandInTheManifest)
{
    // Multi-writer crash-safety: appendPart reloads the manifest under
    // the store lock, so writers that interleave never clobber each
    // other's rows (the coordinator's workers share one store).
    const TempDir dir("multiwriter");
    std::string error;
    auto a = ResultStore::create(dir.str(), testSweep(), &error);
    ASSERT_TRUE(a.has_value()) << error;
    auto b = ResultStore::open(dir.str(), &error);
    ASSERT_TRUE(b.has_value()) << error;

    ASSERT_TRUE(a->appendPart({makeRecord("ebs", 0)}, "w1",
                              testParams(), &error))
        << error;
    // b's in-memory manifest predates a's append; its own append must
    // preserve a's row anyway.
    ASSERT_TRUE(b->appendPart({makeRecord("ebs", 1)}, "w2",
                              testParams(), &error))
        << error;
    ASSERT_TRUE(a->appendPart({makeRecord("interactive", 0)}, "w1",
                              testParams(), &error))
        << error;

    auto reopened = ResultStore::open(dir.str(), &error);
    ASSERT_TRUE(reopened.has_value()) << error;
    EXPECT_EQ(reopened->parts().size(), 3u);
    EXPECT_EQ(reopened->recordCount(), 3u);
    std::vector<StoreProblem> problems;
    EXPECT_TRUE(reopened->validate(problems))
        << (problems.empty() ? "" : problems[0].message);
}

TEST(ResultStore, PublishFenceBlocksZombieAppends)
{
    const TempDir dir("fence");
    std::string error;
    auto store = ResultStore::create(dir.str(), testSweep(), &error);
    ASSERT_TRUE(store.has_value()) << error;

    store->setPublishFence([](std::string *why) {
        *why = "range 3 no longer owned";
        return false;
    });
    EXPECT_FALSE(store->appendPart({makeRecord("ebs", 0)}, "z",
                                   testParams(), &error));
    EXPECT_NE(error.find("lease fenced"), std::string::npos) << error;
    EXPECT_EQ(store->parts().size(), 0u);

    // The refused part file must not linger as an orphan.
    std::vector<StoreProblem> problems;
    EXPECT_TRUE(store->validate(problems))
        << (problems.empty() ? "" : problems[0].message);

    store->setPublishFence({});
    EXPECT_TRUE(store->appendPart({makeRecord("ebs", 0)}, "z",
                                  testParams(), &error))
        << error;
    EXPECT_EQ(store->parts().size(), 1u);
}

TEST(ResultStore, CreateAndMergeRejectDifferentSweeps)
{
    const TempDir dir("sweepguard");
    std::string error;
    auto store = ResultStore::create(dir.str(), testSweep(2), &error);
    ASSERT_TRUE(store.has_value()) << error;

    // Re-creating over the same directory with other axes must fail.
    EXPECT_FALSE(
        ResultStore::create(dir.str(), testSweep(3), &error).has_value());
    EXPECT_NE(error.find("different"), std::string::npos) << error;

    const TempDir other("sweepguard2");
    auto foreign = ResultStore::create(other.str(), testSweep(3), &error);
    ASSERT_TRUE(foreign.has_value()) << error;
    EXPECT_FALSE(store->mergeFrom(*foreign, &error));
    EXPECT_NE(error.find("different"), std::string::npos) << error;
}

TEST(ResultReduce, DeduplicatesReRunsAndFlagsConflicts)
{
    const TempDir dir("dedup");
    std::string error;
    // Seeds must match the sweep population for reduction to accept
    // the records.
    FleetConfig seeds;
    const SweepSpec sweep = testSweep(2);
    const auto seeded = [&](const std::string &scheduler, uint32_t user) {
        SessionRecord rec = makeRecord(scheduler, user);
        rec.userSeed = fleetUserSeed(seeds, static_cast<int>(user));
        return rec;
    };
    auto store = ResultStore::create(dir.str(), sweep, &error);
    ASSERT_TRUE(store.has_value()) << error;
    ASSERT_TRUE(store->appendPart({seeded("interactive", 0),
                                   seeded("interactive", 1),
                                   seeded("ebs", 0), seeded("ebs", 1)},
                                  "s0", testParams(), &error));
    // An identical re-run (killed-run checkpoint overlap) deduplicates
    // silently.
    ASSERT_TRUE(store->appendPart({seeded("ebs", 1)}, "s0", testParams(),
                                  &error));

    StoreReduction reduction;
    ASSERT_TRUE(reduceStore(*store, reduction, &error)) << error;
    EXPECT_EQ(reduction.sessions, 4u);
    EXPECT_EQ(reduction.duplicates, 1u);
    EXPECT_EQ(reduction.missing, 0u);
    EXPECT_TRUE(reduction.problems.empty());
    EXPECT_EQ(reduction.metrics.sessions(), 4);

    // A conflicting duplicate (same key, different stats) is flagged:
    // deterministic re-runs can never produce one.
    SessionRecord conflict = seeded("ebs", 0);
    conflict.stats.totalEnergyMj += 1.0;
    ASSERT_TRUE(store->appendPart({conflict}, "s0", testParams(),
                                  &error));
    StoreReduction again;
    ASSERT_TRUE(reduceStore(*store, again, &error)) << error;
    EXPECT_EQ(again.duplicates, 2u);
    ASSERT_EQ(again.problems.size(), 1u);
    EXPECT_NE(again.problems[0].find("conflict"), std::string::npos);
}

TEST(ResultReduce, ReportsRecordsOutsideTheSweep)
{
    const TempDir dir("foreign");
    std::string error;
    auto store = ResultStore::create(dir.str(), testSweep(1), &error);
    ASSERT_TRUE(store.has_value()) << error;
    SessionRecord rec = makeRecord("oracle", 0);  // not a sweep scheduler
    ASSERT_TRUE(store->appendPart({rec}, "s0", testParams(), &error));

    StoreReduction reduction;
    ASSERT_TRUE(reduceStore(*store, reduction, &error)) << error;
    EXPECT_EQ(reduction.sessions, 0u);
    ASSERT_EQ(reduction.problems.size(), 1u);
    EXPECT_NE(reduction.problems[0].find("cross-product"),
              std::string::npos);
    // Both sweep cells have no valid records at all.
    EXPECT_EQ(reduction.missing, 2u);
}

// ------------------------------------------- fleet-level byte fidelity

FleetConfig
fidelityFleet()
{
    FleetConfig config;
    config.apps = {appByName("cnn"), appByName("social_feed")};
    config.schedulers = {SchedulerKind::Interactive, SchedulerKind::Ebs};
    config.users = 3;
    config.threads = 4;
    return config;
}

std::string
reportBytes(const FleetConfig &config, const MetricsAggregator &metrics)
{
    return JsonReporter::toString(makeFleetReport(config, metrics)) +
        CsvReporter::toString(makeFleetReport(config, metrics));
}

std::string
storeReportBytes(const ResultStore &store)
{
    StoreReduction reduction;
    std::string error;
    EXPECT_TRUE(reduceStore(store, reduction, &error)) << error;
    EXPECT_TRUE(reduction.problems.empty());
    return JsonReporter::toString(
               makeStoreReport(store, reduction.metrics)) +
        CsvReporter::toString(makeStoreReport(store, reduction.metrics));
}

TEST(FleetResults, ShardedRunsMergeToTheWholeRunBytes)
{
    for (const bool warm : {false, true}) {
        FleetConfig whole = fidelityFleet();
        whole.warmDrivers = warm;
        FleetRunner whole_runner(whole);
        const std::string whole_bytes =
            reportBytes(whole_runner.config(),
                        whole_runner.run().metrics);

        // The same sweep as three shards on "three machines" (distinct
        // stores, different thread counts), then merged.
        const TempDir dir(warm ? "shards_warm" : "shards");
        std::string error;
        std::vector<std::string> shard_dirs;
        for (int k = 0; k < 3; ++k) {
            FleetConfig shard = fidelityFleet();
            shard.warmDrivers = warm;
            shard.shardIndex = k;
            shard.shardCount = 3;
            shard.threads = 1 + k;
            shard.checkpointEvery = 2;
            const std::string shard_dir =
                (dir.path / ("s" + std::to_string(k))).string();
            auto store = ResultStore::create(
                shard_dir, SweepSpec::fromConfig(shard), &error);
            ASSERT_TRUE(store.has_value()) << error;
            shard.resultStore = &*store;
            FleetRunner runner(shard);
            const FleetOutcome outcome = runner.run();
            EXPECT_TRUE(outcome.diagnostics.empty());
            EXPECT_GT(outcome.persistedRecords, 0u);
            shard_dirs.push_back(shard_dir);
        }

        auto merged = ResultStore::create(
            (dir.path / "merged").string(),
            SweepSpec::fromConfig(whole), &error);
        ASSERT_TRUE(merged.has_value()) << error;
        for (const std::string &shard_dir : shard_dirs) {
            auto src = ResultStore::open(shard_dir, &error);
            ASSERT_TRUE(src.has_value()) << error;
            ASSERT_TRUE(merged->mergeFrom(*src, &error)) << error;
        }
        EXPECT_EQ(merged->recordCount(),
                  static_cast<uint64_t>(whole_runner.jobs().size()));
        EXPECT_EQ(storeReportBytes(*merged), whole_bytes)
            << (warm ? "warm" : "fresh");
    }
}

TEST(FleetResults, ResumeSkipsCompletedJobsAndReproducesTheWholeRun)
{
    FleetConfig whole = fidelityFleet();
    FleetRunner whole_runner(whole);
    const std::string whole_bytes =
        reportBytes(whole_runner.config(), whole_runner.run().metrics);
    const int total = static_cast<int>(whole_runner.jobs().size());

    // "Kill" a sweep partway: execute only shard 0 of 2 into the store
    // (checkpointing every session), as an interrupted run would have.
    const TempDir dir("resume");
    std::string error;
    FleetConfig partial = fidelityFleet();
    partial.shardIndex = 0;
    partial.shardCount = 2;
    partial.checkpointEvery = 1;
    auto store = ResultStore::create(dir.str(),
                                     SweepSpec::fromConfig(partial),
                                     &error);
    ASSERT_TRUE(store.has_value()) << error;
    partial.resultStore = &*store;
    FleetRunner partial_runner(partial);
    const FleetOutcome partial_outcome = partial_runner.run();
    EXPECT_TRUE(partial_outcome.diagnostics.empty());
    const int done = partial_outcome.jobCount;
    ASSERT_GT(done, 0);
    ASSERT_LT(done, total);

    // Resume the WHOLE sweep against the same store: the plan must
    // skip exactly the persisted sessions and execute the rest.
    FleetConfig rest = fidelityFleet();
    rest.resume = true;
    rest.checkpointEvery = 1;
    auto reopened = ResultStore::open(dir.str(), &error);
    ASSERT_TRUE(reopened.has_value()) << error;
    rest.resultStore = &*reopened;
    FleetRunner rest_runner(rest);
    const FleetPlan plan = rest_runner.plan();
    EXPECT_EQ(plan.resumeSkipped, done);
    EXPECT_EQ(plan.plannedJobs, total - done);

    const FleetOutcome rest_outcome = rest_runner.run();
    EXPECT_TRUE(rest_outcome.diagnostics.empty());
    EXPECT_EQ(rest_outcome.jobCount, total - done);
    // The resumed run reduces FROM the store, so its own metrics
    // already cover the whole sweep...
    EXPECT_EQ(reportBytes(rest_runner.config(), rest_outcome.metrics),
              whole_bytes);
    // ...and so does an after-the-fact reduction of the store.
    EXPECT_EQ(storeReportBytes(*reopened), whole_bytes);

    // Resuming again is a no-op: everything is already persisted.
    FleetConfig again = fidelityFleet();
    again.resume = true;
    again.resultStore = &*reopened;
    FleetRunner again_runner(again);
    EXPECT_EQ(again_runner.plan().plannedJobs, 0);
    const FleetOutcome noop = again_runner.run();
    EXPECT_EQ(noop.jobCount, 0);
    EXPECT_EQ(reportBytes(again_runner.config(), noop.metrics),
              whole_bytes);
}

TEST(FleetResults, TraceCacheEvictionNeverChangesReportBytes)
{
    FleetConfig unbounded = fidelityFleet();
    FleetRunner unbounded_runner(unbounded);
    const std::string unbounded_bytes = reportBytes(
        unbounded_runner.config(), unbounded_runner.run().metrics);

    FleetConfig capped = fidelityFleet();
    capped.traceCacheCap = 2;  // 6 distinct traces in this sweep
    FleetRunner capped_runner(capped);
    const FleetOutcome outcome = capped_runner.run();
    EXPECT_GT(outcome.traceCacheEvictions, 0u);
    EXPECT_EQ(reportBytes(capped_runner.config(), outcome.metrics),
              unbounded_bytes);
}

} // namespace
} // namespace pes
