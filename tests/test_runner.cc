/**
 * @file
 * Unit tests for the fleet-runner subsystem: job enumeration, the
 * thread pool, aggregator merge correctness, reporter round-trips, and
 * end-to-end determinism across thread counts.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>

#include "core/experiment.hh"
#include "runner/fleet_config.hh"
#include "runner/fleet_runner.hh"
#include "runner/metrics_aggregator.hh"
#include "runner/reporters.hh"
#include "runner/thread_pool.hh"
#include "util/logging.hh"

namespace pes {
namespace {

FleetConfig
smallFleet()
{
    FleetConfig config;
    config.apps = {appByName("cnn"), appByName("social_feed")};
    config.schedulers = {SchedulerKind::Interactive, SchedulerKind::Ebs};
    config.users = 3;
    return config;
}

// ------------------------------------------------------ job enumeration

TEST(FleetConfig, EnumeratesFullCrossProduct)
{
    FleetConfig config = smallFleet();
    config.devices = {AcmpPlatform::exynos5410(),
                      AcmpPlatform::tegraParker()};
    const auto jobs = enumerateJobs(config);
    ASSERT_EQ(jobs.size(), 2u * 2u * 2u * 3u);
    ASSERT_EQ(config.jobCount(), static_cast<int>(jobs.size()));

    // Canonical order: index dense and ascending; users innermost so
    // each (device, app, scheduler) cell is contiguous.
    for (size_t i = 0; i < jobs.size(); ++i)
        EXPECT_EQ(jobs[i].index, static_cast<int>(i));
    for (size_t i = 1; i < jobs.size(); ++i) {
        if (jobs[i].userIndex != 0) {
            EXPECT_EQ(jobs[i].deviceIndex, jobs[i - 1].deviceIndex);
            EXPECT_EQ(jobs[i].appIndex, jobs[i - 1].appIndex);
            EXPECT_EQ(jobs[i].schedulerIndex,
                      jobs[i - 1].schedulerIndex);
        }
    }
}

TEST(FleetConfig, SeedsAreDeterministicAndPerUser)
{
    FleetConfig config = smallFleet();
    const auto a = enumerateJobs(config);
    const auto b = enumerateJobs(config);
    ASSERT_EQ(a.size(), b.size());
    std::set<uint64_t> seeds;
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].userSeed, b[i].userSeed);
        // Same user => same seed across cells (schedulers compared on
        // identical traffic), different users => different seeds.
        EXPECT_EQ(a[i].userSeed, fleetUserSeed(config, a[i].userIndex));
        seeds.insert(a[i].userSeed);
    }
    EXPECT_EQ(seeds.size(), 3u);
}

TEST(FleetConfig, EvaluationModeUsesPaperPopulation)
{
    FleetConfig config = smallFleet();
    config.seedMode = SeedMode::Evaluation;
    EXPECT_EQ(fleetUserSeed(config, 0),
              TraceGenerator::kEvaluationSeedBase);
    EXPECT_EQ(fleetUserSeed(config, 2),
              TraceGenerator::kEvaluationSeedBase + 2);
}

TEST(FleetConfig, ParsersAcceptNamesAndGroups)
{
    const auto kinds = parseSchedulerList("pes, EBS,oracle");
    ASSERT_EQ(kinds.size(), 3u);
    EXPECT_EQ(kinds[0], SchedulerKind::Pes);
    EXPECT_EQ(kinds[1], SchedulerKind::Ebs);
    EXPECT_EQ(kinds[2], SchedulerKind::Oracle);

    EXPECT_EQ(parseAppList("seen").size(), 12u);
    EXPECT_EQ(parseAppList("unseen").size(), 6u);
    EXPECT_EQ(parseAppList("all").size(), 18u);
    const auto extra = parseAppList("extra");
    ASSERT_GE(extra.size(), 1u);
    EXPECT_EQ(extra[0].name, "social_feed");
    EXPECT_EQ(parseAppList("cnn,social_feed").size(), 2u);

    EXPECT_EQ(parseDeviceList("exynos5410,tegra-parker").size(), 2u);
}

// ----------------------------------------------------------- ThreadPool

TEST(ThreadPool, RunsEveryTaskExactlyOnce)
{
    std::atomic<int> counter{0};
    std::vector<std::atomic<int>> hits(257);
    for (auto &h : hits)
        h = 0;
    {
        ThreadPool pool(4);
        for (size_t i = 0; i < hits.size(); ++i) {
            pool.submit([&, i](int worker) {
                ASSERT_GE(worker, 0);
                ASSERT_LT(worker, 4);
                hits[i]+= 1;
                counter += 1;
            });
        }
        pool.wait();
        EXPECT_EQ(counter.load(), 257);
    }
    for (auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, CapturesWorkerExceptionsInsteadOfTerminating)
{
    std::atomic<int> completed{0};
    ThreadPool pool(3);
    for (int i = 0; i < 20; ++i) {
        pool.submit([&, i](int) {
            if (i % 5 == 0)
                throw std::runtime_error("task " + std::to_string(i) +
                                         " failed");
            completed += 1;
        });
    }
    pool.wait();
    // Throwing tasks become diagnostics; the rest still ran.
    EXPECT_EQ(completed.load(), 16);
    const std::vector<std::string> errors = pool.errors();
    ASSERT_EQ(errors.size(), 4u);
    for (const std::string &e : errors) {
        EXPECT_NE(e.find("worker"), std::string::npos) << e;
        EXPECT_NE(e.find("failed"), std::string::npos) << e;
    }
    // The pool survives and keeps serving tasks after failures.
    pool.submit([&](int) { completed += 1; });
    pool.wait();
    EXPECT_EQ(completed.load(), 17);
}

TEST(ThreadPool, WaitIsReusable)
{
    ThreadPool pool(2);
    std::atomic<int> counter{0};
    pool.submit([&](int) { counter += 1; });
    pool.wait();
    EXPECT_EQ(counter.load(), 1);
    pool.submit([&](int) { counter += 1; });
    pool.submit([&](int) { counter += 1; });
    pool.wait();
    EXPECT_EQ(counter.load(), 3);
}

TEST(ThreadPool, ParallelForCoversRange)
{
    std::vector<std::atomic<int>> hits(100);
    for (auto &h : hits)
        h = 0;
    parallelFor(100, 3, [&](int i, int worker) {
        EXPECT_GE(worker, 0);
        EXPECT_LT(worker, 3);
        hits[static_cast<size_t>(i)] += 1;
    });
    for (auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

// ----------------------------------------------------------- aggregator

SessionStats
fakeSession(int events, int violations, double energy, double latency)
{
    SessionStats s;
    s.events = events;
    s.violations = violations;
    s.totalEnergyMj = energy;
    s.meanLatencyMs = latency;
    s.p95LatencyMs = latency * 2.0;
    s.durationMs = 1000.0;
    return s;
}

TEST(MetricsAggregator, AggregatesKnownInputs)
{
    MetricsAggregator agg;
    agg.add("dev", "app", "S", fakeSession(10, 1, 100.0, 50.0));
    agg.add("dev", "app", "S", fakeSession(30, 5, 300.0, 150.0));

    const CellSummary c = agg.cell("dev", "app", "S");
    EXPECT_EQ(c.sessions, 2);
    EXPECT_EQ(c.events, 40);
    EXPECT_EQ(c.violations, 6);
    EXPECT_DOUBLE_EQ(c.violationRate, 6.0 / 40.0);
    EXPECT_DOUBLE_EQ(c.meanEnergyMj, 200.0);
    EXPECT_DOUBLE_EQ(c.minEnergyMj, 100.0);
    EXPECT_DOUBLE_EQ(c.maxEnergyMj, 300.0);
    // Event-weighted: (50*10 + 150*30) / 40.
    EXPECT_DOUBLE_EQ(c.meanLatencyMs, 125.0);
    EXPECT_EQ(agg.sessions(), 2);
    EXPECT_EQ(agg.events(), 40);

    // Unknown cell reads as empty.
    EXPECT_EQ(agg.cell("dev", "nope", "S").sessions, 0);
}

TEST(MetricsAggregator, MergeMatchesSequentialFeed)
{
    const std::vector<SessionStats> sessions{
        fakeSession(10, 1, 100.0, 50.0), fakeSession(20, 3, 250.0, 80.0),
        fakeSession(15, 0, 90.0, 20.0), fakeSession(5, 2, 400.0, 300.0)};

    MetricsAggregator whole;
    for (const SessionStats &s : sessions)
        whole.add("d", "a", "S", s);

    MetricsAggregator left, right;
    left.add("d", "a", "S", sessions[0]);
    left.add("d", "a", "S", sessions[1]);
    right.add("d", "a", "S", sessions[2]);
    right.add("d", "a", "S", sessions[3]);
    left.merge(right);

    const CellSummary a = whole.cell("d", "a", "S");
    const CellSummary b = left.cell("d", "a", "S");
    EXPECT_EQ(a.sessions, b.sessions);
    EXPECT_EQ(a.events, b.events);
    EXPECT_EQ(a.violations, b.violations);
    EXPECT_DOUBLE_EQ(a.violationRate, b.violationRate);
    EXPECT_NEAR(a.meanEnergyMj, b.meanEnergyMj, 1e-9);
    EXPECT_NEAR(a.stddevEnergyMj, b.stddevEnergyMj, 1e-9);
    EXPECT_DOUBLE_EQ(a.minEnergyMj, b.minEnergyMj);
    EXPECT_DOUBLE_EQ(a.maxEnergyMj, b.maxEnergyMj);
    EXPECT_NEAR(a.meanLatencyMs, b.meanLatencyMs, 1e-9);
    EXPECT_DOUBLE_EQ(a.p50SessionLatencyMs, b.p50SessionLatencyMs);
    EXPECT_DOUBLE_EQ(a.p95SessionLatencyMs, b.p95SessionLatencyMs);
}

TEST(MetricsAggregator, ReducesSimResultFaithfully)
{
    SimResult r;
    r.appName = "a";
    r.schedulerName = "S";
    r.totalEnergy = 1234.0;
    r.duration = 5000.0;
    for (int i = 0; i < 4; ++i) {
        EventRecord e;
        e.arrival = 100.0 * i;
        e.displayed = e.arrival + 50.0 * (i + 1);  // 50/100/150/200 ms.
        e.qosTarget = 120.0;
        r.events.push_back(e);
    }
    const SessionStats s = SessionStats::reduce(r);
    EXPECT_EQ(s.events, 4);
    EXPECT_EQ(s.violations, 2);  // 150 and 200 exceed 120.
    EXPECT_DOUBLE_EQ(s.meanLatencyMs, 125.0);
    EXPECT_DOUBLE_EQ(s.maxLatencyMs, 200.0);
    EXPECT_DOUBLE_EQ(s.totalEnergyMj, 1234.0);
}

// ------------------------------------------------------------ reporters

FleetReport
sampleReport()
{
    MetricsAggregator agg;
    agg.add("Exynos 5410", "cnn", "PES", fakeSession(10, 1, 100.5, 50.25));
    agg.add("Exynos 5410", "cnn", "PES", fakeSession(20, 2, 200.5, 80.5));
    agg.add("Exynos 5410", "social_feed", "EBS",
            fakeSession(30, 3, 300.125, 90.75));

    FleetConfig config;
    config.apps = {appByName("cnn"), appByName("social_feed")};
    config.schedulers = {SchedulerKind::Pes, SchedulerKind::Ebs};
    config.users = 10;
    config.baseSeed = 0x123456789abcdef0ull;
    return makeFleetReport(config, agg);
}

TEST(Reporters, JsonRoundTrip)
{
    const FleetReport report = sampleReport();
    const std::string text = JsonReporter::toString(report);

    const auto parsed = JsonReporter::parse(text);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->baseSeed, report.baseSeed);
    EXPECT_EQ(parsed->seedMode, report.seedMode);
    EXPECT_EQ(parsed->users, report.users);
    EXPECT_EQ(parsed->sessions, report.sessions);
    EXPECT_EQ(parsed->events, report.events);
    EXPECT_EQ(parsed->devices, report.devices);
    EXPECT_EQ(parsed->apps, report.apps);
    EXPECT_EQ(parsed->schedulers, report.schedulers);
    ASSERT_EQ(parsed->cells.size(), report.cells.size());
    for (size_t i = 0; i < report.cells.size(); ++i) {
        EXPECT_EQ(parsed->cells[i].app, report.cells[i].app);
        EXPECT_EQ(parsed->cells[i].scheduler, report.cells[i].scheduler);
        EXPECT_EQ(parsed->cells[i].sessions, report.cells[i].sessions);
        EXPECT_NEAR(parsed->cells[i].meanEnergyMj,
                    report.cells[i].meanEnergyMj, 1e-6);
        EXPECT_NEAR(parsed->cells[i].violationRate,
                    report.cells[i].violationRate, 1e-9);
    }

    // Serialize -> parse -> serialize is a fixed point (stable bytes).
    EXPECT_EQ(JsonReporter::toString(*parsed), text);

    EXPECT_FALSE(JsonReporter::parse("not json").has_value());
    EXPECT_FALSE(JsonReporter::parse("{\"cells\": 3}").has_value());
}

TEST(Reporters, CsvRoundTrip)
{
    const FleetReport report = sampleReport();
    const std::string text = CsvReporter::toString(report);

    const auto cells = CsvReporter::parse(text);
    ASSERT_TRUE(cells.has_value());
    ASSERT_EQ(cells->size(), report.cells.size());
    for (size_t i = 0; i < report.cells.size(); ++i) {
        EXPECT_EQ((*cells)[i].device, report.cells[i].device);
        EXPECT_EQ((*cells)[i].app, report.cells[i].app);
        EXPECT_EQ((*cells)[i].scheduler, report.cells[i].scheduler);
        EXPECT_EQ((*cells)[i].events, report.cells[i].events);
        EXPECT_NEAR((*cells)[i].meanEnergyMj,
                    report.cells[i].meanEnergyMj, 1e-6);
    }
    EXPECT_FALSE(CsvReporter::parse("bogus,rows\n1,2\n").has_value());
}

// -------------------------------------------------- end-to-end fleets

TEST(FleetRunner, DeterministicAcrossThreadCounts)
{
    FleetConfig config = smallFleet();
    config.threads = 1;
    FleetRunner serial(config);
    config.threads = 8;
    FleetRunner parallel(config);

    const FleetOutcome a = serial.run();
    const FleetOutcome b = parallel.run();
    ASSERT_EQ(a.jobCount, b.jobCount);
    EXPECT_EQ(a.jobCount, 12);

    // Byte-identical reports regardless of worker count.
    const std::string ja =
        JsonReporter::toString(makeFleetReport(serial.config(), a.metrics));
    const std::string jb = JsonReporter::toString(
        makeFleetReport(parallel.config(), b.metrics));
    EXPECT_EQ(ja, jb);
    EXPECT_EQ(
        CsvReporter::toString(makeFleetReport(serial.config(), a.metrics)),
        CsvReporter::toString(
            makeFleetReport(parallel.config(), b.metrics)));
}

TEST(FleetRunner, CollectedResultsFollowJobOrder)
{
    FleetConfig config = smallFleet();
    config.users = 2;
    config.threads = 4;
    config.collectResults = true;
    FleetRunner runner(config);
    const FleetOutcome outcome = runner.run();

    const auto &jobs = runner.jobs();
    const auto &results = outcome.results.results();
    ASSERT_EQ(results.size(), jobs.size());
    for (size_t i = 0; i < jobs.size(); ++i) {
        EXPECT_EQ(results[i].appName,
                  config.apps[static_cast<size_t>(jobs[i].appIndex)].name);
        EXPECT_EQ(results[i].schedulerName,
                  schedulerKindName(config.schedulers[static_cast<size_t>(
                      jobs[i].schedulerIndex)]));
        EXPECT_GT(results[i].events.size(), 0u);
    }
    EXPECT_EQ(outcome.metrics.sessions(), static_cast<int>(jobs.size()));
}

TEST(FleetRunner, WarmEvaluationMatchesExperimentSweep)
{
    // The fleet's warm evaluation mode must reproduce the classic
    // Experiment::runSweep protocol bit-for-bit (cell-sequential warmed
    // drivers over the Sec.-6.1 evaluation users).
    const std::vector<AppProfile> profiles{appByName("bbc")};
    const std::vector<SchedulerKind> kinds{SchedulerKind::Ebs};

    Experiment exp;
    ResultSet manual;
    {
        const auto traces = exp.generator().evaluationSet(
            profiles[0], Experiment::kEvalTracesPerApp);
        const auto driver = exp.makeScheduler(kinds[0]);
        for (const InteractionTrace &trace : traces)
            manual.add(exp.runTrace(profiles[0], trace, *driver));
    }

    Experiment exp2;
    exp2.setSweepThreads(3);
    ResultSet fleet;
    exp2.runSweep(profiles, kinds, fleet);

    ASSERT_EQ(fleet.results().size(), manual.results().size());
    for (size_t i = 0; i < manual.results().size(); ++i) {
        const SimResult &m = manual.results()[i];
        const SimResult &f = fleet.results()[i];
        EXPECT_EQ(f.appName, m.appName);
        EXPECT_EQ(f.schedulerName, m.schedulerName);
        EXPECT_EQ(f.events.size(), m.events.size());
        EXPECT_DOUBLE_EQ(f.totalEnergy, m.totalEnergy);
        EXPECT_DOUBLE_EQ(f.duration, m.duration);
        EXPECT_DOUBLE_EQ(f.violationRate(), m.violationRate());
    }
}

} // namespace
} // namespace pes
