/**
 * @file
 * Tests for the scenario-family subsystem: registry validity, severity
 * mapping semantics (identity at 0, monotone stress knobs), derivation
 * determinism, spec-file loading with classified diagnostics, the
 * scenario-carrying sweep identity (reports, stores, diff refusal),
 * fleet-level byte determinism of scenario sweeps across thread
 * counts, and the robustness reduction with its curve reporters.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "results/report_diff.hh"
#include "results/result_store.hh"
#include "results/robustness.hh"
#include "runner/fleet_runner.hh"
#include "runner/reporters.hh"
#include "scenario/scenario_family.hh"
#include "scenario/scenario_plan.hh"
#include "trace/generator.hh"

namespace fs = std::filesystem;

namespace pes {
namespace {

/** Unique scratch directory, removed on scope exit. */
struct TempDir
{
    explicit TempDir(const std::string &name)
        : path(fs::temp_directory_path() / ("pes_scenario_test_" + name))
    {
        fs::remove_all(path);
        fs::create_directories(path);
    }
    ~TempDir() { fs::remove_all(path); }

    std::string str() const { return path.string(); }

    fs::path path;
};

const AcmpPlatform &
exynos()
{
    static const AcmpPlatform platform = AcmpPlatform::exynos5410();
    return platform;
}

InteractionTrace
makeTrace(const std::string &app = "cnn", uint64_t seed = 42)
{
    TraceGenerator generator(exynos());
    return generator.generate(appByName(app), seed);
}

std::string
writeSpec(const TempDir &dir, const std::string &name,
          const std::string &text)
{
    const std::string path = (dir.path / name).string();
    std::ofstream os(path);
    os << text;
    return path;
}

// ----------------------------------------------------------- registry

TEST(ScenarioFamily, RegistryFamiliesAreValidAndDistinct)
{
    const auto &families = scenarioRegistry();
    ASSERT_GE(families.size(), 4u);
    for (const ScenarioFamily &family : families) {
        EXPECT_TRUE(validScenarioName(family.name)) << family.name;
        std::vector<IntegrityProblem> problems;
        EXPECT_TRUE(validateScenarioFamily(family, problems))
            << family.name;
        EXPECT_EQ(findScenarioFamily(family.name), &family);
    }
    EXPECT_EQ(findScenarioFamily("no_such_family"), nullptr);
}

TEST(ScenarioFamily, SeverityZeroIsIdentity)
{
    const InteractionTrace base = makeTrace("bbc", 7);
    for (const ScenarioFamily &family : scenarioRegistry()) {
        const InteractionTrace derived =
            family.derive(base, 0.0, kDefaultScenarioSeed);
        EXPECT_TRUE(derived == base)
            << family.name << " is not identity at severity 0";
    }
}

TEST(ScenarioFamily, FullSeverityActuallyStresses)
{
    const InteractionTrace base = makeTrace("youtube", 11);
    for (const ScenarioFamily &family : scenarioRegistry()) {
        const InteractionTrace derived =
            family.derive(base, 1.0, kDefaultScenarioSeed);
        EXPECT_FALSE(derived == base)
            << family.name << " does nothing at severity 1";
    }
}

TEST(ScenarioFamily, DeriveIsDeterministicInAllInputs)
{
    const InteractionTrace base = makeTrace("amazon", 3);
    const ScenarioFamily &family = *findScenarioFamily("rage_tap_storm");

    const InteractionTrace a = family.derive(base, 0.5, 99);
    const InteractionTrace b = family.derive(base, 0.5, 99);
    EXPECT_TRUE(a == b);

    // Severity and mutator seed both select different variants.
    EXPECT_FALSE(family.derive(base, 0.75, 99) == a);
    EXPECT_FALSE(family.derive(base, 0.5, 100) == a);
}

TEST(ScenarioFamily, SeverityParamInterpolatesLinearly)
{
    const SeverityParam ramp = rampParam(1.0, 3.0);
    EXPECT_DOUBLE_EQ(ramp.at(0.0), 1.0);
    EXPECT_DOUBLE_EQ(ramp.at(0.5), 2.0);
    EXPECT_DOUBLE_EQ(ramp.at(1.0), 3.0);
    EXPECT_DOUBLE_EQ(constantParam(0.4).at(0.7), 0.4);
}

TEST(ScenarioFamily, DeriveRejectsOutOfRangeSeverity)
{
    const InteractionTrace base = makeTrace();
    const ScenarioFamily &family = *findScenarioFamily("hurried_user");
    EXPECT_DEATH(family.derive(base, -0.1, 1), "severity");
    EXPECT_DEATH(family.derive(base, 1.5, 1), "severity");
}

// ---------------------------------------------------------- spec files

TEST(ScenarioSpec, LoadsAWellFormedSpec)
{
    const TempDir dir("spec_ok");
    const std::string path = writeSpec(dir, "family.json", R"({
      "version": 1,
      "name": "angry_commuter",
      "description": "drops and bursts",
      "ops": [
        {"op": "event_drop", "probability": [0, 0.4]},
        {"op": "burst", "rate": [0, 0.5], "length": [1, 5]},
        {"op": "jitter", "magnitude": 0.25}
      ]
    })");
    std::vector<IntegrityProblem> problems;
    const auto family = loadScenarioSpec(path, problems);
    ASSERT_TRUE(family.has_value());
    EXPECT_TRUE(problems.empty());
    EXPECT_EQ(family->name, "angry_commuter");
    ASSERT_EQ(family->ops.size(), 3u);
    EXPECT_EQ(family->ops[0].kind, ScenarioOpKind::EventDrop);
    EXPECT_DOUBLE_EQ(family->ops[0].probability.at1, 0.4);
    EXPECT_EQ(family->ops[1].kind, ScenarioOpKind::Burst);
    EXPECT_DOUBLE_EQ(family->ops[1].length.at(1.0), 5.0);
    // Constant parameter: same value across the whole interval.
    EXPECT_DOUBLE_EQ(family->ops[2].magnitude.at(0.0), 0.25);
    EXPECT_DOUBLE_EQ(family->ops[2].magnitude.at(1.0), 0.25);

    // A spec-loaded family derives deterministically like a built-in.
    const InteractionTrace base = makeTrace("cnn", 5);
    EXPECT_TRUE(family->derive(base, 0.5, 7) ==
                family->derive(base, 0.5, 7));
}

TEST(ScenarioSpec, MissingFileIsClassifiedMissing)
{
    std::vector<IntegrityProblem> problems;
    EXPECT_FALSE(
        loadScenarioSpec("/no/such/spec.json", problems).has_value());
    ASSERT_EQ(problems.size(), 1u);
    EXPECT_EQ(problems[0].kind, IntegrityProblem::Kind::MissingFile);
    EXPECT_EQ(integrityExitCode(problems), kExitMissing);
}

TEST(ScenarioSpec, MalformedJsonIsClassifiedCorrupt)
{
    const TempDir dir("spec_bad");
    const std::string path =
        writeSpec(dir, "bad.json", "{\"name\": \"x\",,,");
    std::vector<IntegrityProblem> problems;
    EXPECT_FALSE(loadScenarioSpec(path, problems).has_value());
    ASSERT_FALSE(problems.empty());
    EXPECT_EQ(problems[0].kind, IntegrityProblem::Kind::Corrupt);
    EXPECT_EQ(integrityExitCode(problems), kExitCorrupt);
}

TEST(ScenarioSpec, UnknownOpAndParamAreClassifiedMismatch)
{
    const TempDir dir("spec_unknown");
    std::vector<IntegrityProblem> problems;
    EXPECT_FALSE(loadScenarioSpec(
                     writeSpec(dir, "op.json",
                               R"({"version": 1, "name": "x",
                                   "ops": [{"op": "warp"}]})"),
                     problems)
                     .has_value());
    ASSERT_FALSE(problems.empty());
    EXPECT_EQ(problems[0].kind, IntegrityProblem::Kind::Mismatch);
    EXPECT_NE(problems[0].message.find("unknown op 'warp'"),
              std::string::npos);

    problems.clear();
    EXPECT_FALSE(loadScenarioSpec(
                     writeSpec(dir, "param.json",
                               R"({"version": 1, "name": "x",
                                   "ops": [{"op": "jitter",
                                            "factor": 2}]})"),
                     problems)
                     .has_value());
    ASSERT_FALSE(problems.empty());
    EXPECT_EQ(problems[0].kind, IntegrityProblem::Kind::Mismatch);
    EXPECT_EQ(integrityExitCode(problems), kExitCorrupt);
}

TEST(ScenarioSpec, OutOfRangeParametersAreClassifiedMismatch)
{
    const TempDir dir("spec_range");
    const char *bad_specs[] = {
        // Drop probability leaves [0, 1] at full severity.
        R"({"version": 1, "name": "x",
            "ops": [{"op": "event_drop", "probability": [0, 1.5]}]})",
        // Time scale hits zero.
        R"({"version": 1, "name": "x",
            "ops": [{"op": "time_scale", "factor": [1, 0]}]})",
        // Burst length rounds below 1.
        R"({"version": 1, "name": "x",
            "ops": [{"op": "burst", "rate": [0, 1],
                     "length": [0, 3]}]})",
        // Jitter magnitude above 1.
        R"({"version": 1, "name": "x",
            "ops": [{"op": "jitter", "magnitude": 2}]})",
    };
    int index = 0;
    for (const char *spec : bad_specs) {
        std::vector<IntegrityProblem> problems;
        const std::string path = writeSpec(
            dir, "range" + std::to_string(index++) + ".json", spec);
        EXPECT_FALSE(loadScenarioSpec(path, problems).has_value())
            << spec;
        ASSERT_FALSE(problems.empty()) << spec;
        EXPECT_EQ(problems[0].kind, IntegrityProblem::Kind::Mismatch)
            << spec;
        EXPECT_EQ(integrityExitCode(problems), kExitCorrupt);
    }
}

TEST(ScenarioSpec, BadNameAndMissingOpsAreRejected)
{
    const TempDir dir("spec_name");
    std::vector<IntegrityProblem> problems;
    EXPECT_FALSE(loadScenarioSpec(
                     writeSpec(dir, "name.json",
                               R"({"version": 1, "name": "Bad Name!",
                                   "ops": [{"op": "jitter",
                                            "magnitude": 1}]})"),
                     problems)
                     .has_value());
    EXPECT_FALSE(problems.empty());

    problems.clear();
    EXPECT_FALSE(loadScenarioSpec(writeSpec(dir, "noops.json",
                                            R"({"version": 1,
                                                "name": "ok_name"})"),
                                  problems)
                     .has_value());
    EXPECT_FALSE(problems.empty());
}

// ---------------------------------------------------------------- plan

TEST(ScenarioPlan, CanonicalizesAndValidatesTheGrid)
{
    const ScenarioFamily &family = *findScenarioFamily("estimator_chaos");
    std::vector<IntegrityProblem> problems;

    const auto plan =
        makeScenarioPlan(family, {1.0, 0.0, 0.5}, 1, problems);
    ASSERT_TRUE(plan.has_value());
    EXPECT_EQ(plan->severities, (std::vector<double>{0.0, 0.5, 1.0}));

    EXPECT_FALSE(
        makeScenarioPlan(family, {0.0, 0.0}, 1, problems).has_value());
    EXPECT_FALSE(
        makeScenarioPlan(family, {-0.5}, 1, problems).has_value());
    EXPECT_FALSE(makeScenarioPlan(family, {}, 1, problems).has_value());
    EXPECT_FALSE(problems.empty());
}

TEST(ScenarioPlan, ExpandStampsScenarioAndTransform)
{
    const ScenarioFamily &family = *findScenarioFamily("hurried_user");
    std::vector<IntegrityProblem> problems;
    const auto plan = makeScenarioPlan(family, {0.0, 0.5}, 17, problems);
    ASSERT_TRUE(plan.has_value());

    FleetConfig base;
    base.apps = {appByName("cnn")};
    base.schedulers = {SchedulerKind::Ebs};
    base.users = 2;
    const auto cells = plan->expand(base);
    ASSERT_EQ(cells.size(), 2u);
    EXPECT_EQ(cells[0].scenario, "hurried_user@0");
    EXPECT_EQ(cells[1].scenario, "hurried_user@0.5");
    EXPECT_EQ(cells[1].severityTag, "0.5");
    ASSERT_TRUE(static_cast<bool>(cells[1].config.traceTransform));

    // The armed transform equals a direct derive call.
    const InteractionTrace base_trace = makeTrace("cnn", 9);
    EXPECT_TRUE(cells[1].config.traceTransform(base_trace) ==
                family.derive(base_trace, 0.5, 17));
}

// ----------------------------------------- fleet-level byte fidelity

FleetConfig
smallFleet(int threads)
{
    FleetConfig config;
    config.apps = {appByName("cnn"), appByName("social_feed")};
    config.schedulers = {SchedulerKind::Interactive, SchedulerKind::Ebs};
    config.users = 2;
    config.threads = threads;
    return config;
}

std::string
runScenarioSweep(int threads, double severity)
{
    const ScenarioFamily &family = *findScenarioFamily("rage_tap_storm");
    std::vector<IntegrityProblem> problems;
    const auto plan = makeScenarioPlan(family, {severity},
                                       kDefaultScenarioSeed, problems);
    EXPECT_TRUE(plan.has_value());
    auto cells = plan->expand(smallFleet(threads));
    FleetRunner runner(std::move(cells.at(0).config));
    const FleetOutcome outcome = runner.run();
    EXPECT_TRUE(outcome.diagnostics.empty());
    const FleetReport report =
        makeFleetReport(runner.config(), outcome.metrics);
    return JsonReporter::toString(report) + CsvReporter::toString(report);
}

TEST(ScenarioFleet, ReportsAreByteIdenticalAcrossThreadCounts)
{
    // The acceptance gate in unit form: same (family, severity, seed)
    // at t1 vs t8 must serialize identically, bytes included.
    const std::string t1 = runScenarioSweep(1, 0.5);
    const std::string t8 = runScenarioSweep(8, 0.5);
    EXPECT_EQ(t1, t8);
    // And a different severity is genuinely a different population.
    EXPECT_NE(t1, runScenarioSweep(1, 1.0));
}

TEST(ScenarioFleet, ScenarioRidesReportsAndRefusesCrossScenarioDiff)
{
    const ScenarioFamily &family =
        *findScenarioFamily("flaky_input_commuter");
    std::vector<IntegrityProblem> problems;
    const auto plan = makeScenarioPlan(family, {0.0, 1.0},
                                       kDefaultScenarioSeed, problems);
    ASSERT_TRUE(plan.has_value());
    auto cells = plan->expand(smallFleet(4));

    std::vector<FleetReport> reports;
    for (ScenarioCell &cell : cells) {
        FleetRunner runner(std::move(cell.config));
        reports.push_back(
            makeFleetReport(runner.config(), runner.run().metrics));
    }
    EXPECT_EQ(reports[0].scenario, "flaky_input_commuter@0");
    EXPECT_EQ(reports[1].scenario, "flaky_input_commuter@1");

    // Meta round-trips through both serializers.
    const auto from_json =
        JsonReporter::parse(JsonReporter::toString(reports[1]));
    ASSERT_TRUE(from_json.has_value());
    EXPECT_EQ(from_json->scenario, "flaky_input_commuter@1");
    const auto from_csv =
        CsvReporter::parseReport(CsvReporter::toString(reports[1]));
    ASSERT_TRUE(from_csv.has_value());
    EXPECT_EQ(from_csv->scenario, "flaky_input_commuter@1");

    // Cross-severity (and scenario-vs-baseline) diffs refuse with a
    // classified Mismatch -> exit 4.
    const DiffSummary cross =
        diffReports(reports[0], reports[1], DiffOptions{});
    EXPECT_FALSE(cross.comparable);
    EXPECT_EQ(diffExitCode(cross), kExitCorrupt);
    ASSERT_FALSE(cross.problems.empty());
    EXPECT_EQ(cross.problems[0].kind, IntegrityProblem::Kind::Mismatch);
    EXPECT_NE(cross.problems[0].message.find("scenarios differ"),
              std::string::npos);

    FleetReport baseline = reports[0];
    baseline.scenario.clear();
    const DiffSummary vs_baseline =
        diffReports(baseline, reports[0], DiffOptions{});
    EXPECT_FALSE(vs_baseline.comparable);

    // Same severity diffs itself clean.
    EXPECT_TRUE(
        diffReports(reports[1], reports[1], DiffOptions{}).clean());
}

TEST(ScenarioFleet, StoresRefuseToMixScenarios)
{
    const TempDir dir("scenario_store");
    FleetConfig config = smallFleet(1);
    config.scenario = "rage_tap_storm@0.5";
    const SweepSpec spec = SweepSpec::fromConfig(config);
    EXPECT_EQ(spec.scenario, "rage_tap_storm@0.5");

    std::string error;
    ASSERT_TRUE(
        ResultStore::create(dir.str(), spec, &error).has_value())
        << error;

    // Re-creating with the same scenario re-opens; any other scenario
    // (or the baseline) refuses.
    EXPECT_TRUE(
        ResultStore::create(dir.str(), spec, &error).has_value());
    SweepSpec other = spec;
    other.scenario = "rage_tap_storm@1";
    EXPECT_FALSE(
        ResultStore::create(dir.str(), other, &error).has_value());
    other.scenario.clear();
    EXPECT_FALSE(
        ResultStore::create(dir.str(), other, &error).has_value());

    // The scenario survives the manifest round trip.
    const auto reopened = ResultStore::open(dir.str(), &error);
    ASSERT_TRUE(reopened.has_value()) << error;
    EXPECT_EQ(reopened->sweep().scenario, "rage_tap_storm@0.5");
}

// ---------------------------------------------------------- robustness

/** A hand-built single-cell report for severity @p severity. */
FleetReport
syntheticReport(const std::string &family, double severity,
                double violation_rate, double energy, double accuracy)
{
    FleetReport report;
    report.baseSeed = 1;
    report.users = 1;
    report.scenario = scenarioTag(family, severity);
    report.devices = {"Dev"};
    report.apps = {"app"};
    report.schedulers = {"S"};
    CellSummary cell;
    cell.device = "Dev";
    cell.app = "app";
    cell.scheduler = "S";
    cell.sessions = 1;
    cell.violationRate = violation_rate;
    cell.meanEnergyMj = energy;
    cell.predictionAccuracy = accuracy;
    report.cells.push_back(cell);
    report.sessions = 1;
    return report;
}

TEST(Robustness, CurveMathMatchesHandComputation)
{
    std::vector<IntegrityProblem> problems;
    std::vector<std::pair<double, FleetReport>> cells;
    // violation_rate 0.1 -> 0.2 -> 0.4 (lower-better, degrades);
    // energy constant; accuracy 0.8 -> 0.6 -> 0.4 (higher-better,
    // degrades).
    cells.emplace_back(0.0, syntheticReport("fam", 0.0, 0.1, 50.0, 0.8));
    cells.emplace_back(1.0, syntheticReport("fam", 1.0, 0.4, 50.0, 0.4));
    cells.emplace_back(0.5, syntheticReport("fam", 0.5, 0.2, 50.0, 0.6));

    const auto report =
        makeRobustnessReport("fam", std::move(cells), problems);
    ASSERT_TRUE(report.has_value())
        << (problems.empty() ? "" : problems[0].message);
    EXPECT_TRUE(problems.empty());
    EXPECT_EQ(report->severities, (std::vector<double>{0.0, 0.5, 1.0}));

    const auto find_curve = [&](const std::string &metric)
        -> const RobustnessCurve & {
        for (const RobustnessCurve &c : report->curves)
            if (c.metric == metric)
                return c;
        static RobustnessCurve none;
        return none;
    };

    const RobustnessCurve &viol = find_curve("violation_rate");
    ASSERT_EQ(viol.points.size(), 3u);
    EXPECT_DOUBLE_EQ(viol.baseline, 0.1);
    // Least squares over (0, .1), (.5, .2), (1, .4): slope = 0.3.
    EXPECT_NEAR(viol.slope, 0.3, 1e-12);
    // Degradations vs 0.1: 1.0 at s=0.5, 3.0 at s=1.
    EXPECT_NEAR(viol.worstDegradation, 3.0, 1e-12);
    EXPECT_NEAR(viol.robustness, 1.0 / (1.0 + 2.0), 1e-12);

    const RobustnessCurve &energy = find_curve("mean_energy_mj");
    EXPECT_DOUBLE_EQ(energy.slope, 0.0);
    EXPECT_DOUBLE_EQ(energy.worstDegradation, 0.0);
    EXPECT_DOUBLE_EQ(energy.robustness, 1.0);

    // Higher-is-better: accuracy halves -> degradations .25 and .5.
    const RobustnessCurve &accuracy = find_curve("prediction_accuracy");
    EXPECT_NEAR(accuracy.worstDegradation, 0.5, 1e-12);
    EXPECT_NEAR(accuracy.robustness, 1.0 / (1.0 + 0.375), 1e-12);

    ASSERT_EQ(report->schedulers_summary.size(), 1u);
    const SchedulerRobustness &score = report->schedulers_summary[0];
    EXPECT_NEAR(score.worstDegradation, 3.0, 1e-12);
    EXPECT_GT(score.score, 0.0);
    EXPECT_LE(score.score, 1.0);
}

TEST(Robustness, RefusesMismatchedOrIncompleteGrids)
{
    std::vector<IntegrityProblem> problems;

    // Wrong scenario tag for the claimed severity.
    std::vector<std::pair<double, FleetReport>> wrong_tag;
    wrong_tag.emplace_back(0.0,
                           syntheticReport("fam", 0.0, 0.1, 1.0, 1.0));
    wrong_tag.emplace_back(1.0,
                           syntheticReport("fam", 0.5, 0.1, 1.0, 1.0));
    EXPECT_FALSE(makeRobustnessReport("fam", std::move(wrong_tag),
                                      problems)
                     .has_value());
    EXPECT_FALSE(problems.empty());

    // Mismatched axes across severities.
    problems.clear();
    std::vector<std::pair<double, FleetReport>> axes;
    axes.emplace_back(0.0, syntheticReport("fam", 0.0, 0.1, 1.0, 1.0));
    axes.emplace_back(1.0, syntheticReport("fam", 1.0, 0.1, 1.0, 1.0));
    axes.back().second.apps = {"other_app"};
    EXPECT_FALSE(
        makeRobustnessReport("fam", std::move(axes), problems)
            .has_value());
    EXPECT_FALSE(problems.empty());

    // A missing cell (partial sweep) refuses too.
    problems.clear();
    std::vector<std::pair<double, FleetReport>> holes;
    holes.emplace_back(0.0, syntheticReport("fam", 0.0, 0.1, 1.0, 1.0));
    holes.emplace_back(1.0, syntheticReport("fam", 1.0, 0.1, 1.0, 1.0));
    holes.back().second.cells.clear();
    EXPECT_FALSE(
        makeRobustnessReport("fam", std::move(holes), problems)
            .has_value());
    ASSERT_FALSE(problems.empty());
    EXPECT_EQ(problems[0].kind, IntegrityProblem::Kind::Mismatch);
}

TEST(Robustness, CurveReportersAreDeterministic)
{
    std::vector<IntegrityProblem> problems;
    std::vector<std::pair<double, FleetReport>> cells;
    cells.emplace_back(0.0, syntheticReport("fam", 0.0, 0.1, 40.0, 0.9));
    cells.emplace_back(1.0, syntheticReport("fam", 1.0, 0.3, 55.0, 0.7));
    const auto report =
        makeRobustnessReport("fam", std::move(cells), problems);
    ASSERT_TRUE(report.has_value());

    std::ostringstream json_a, json_b, csv_a, csv_b;
    writeRobustnessJson(*report, json_a);
    writeRobustnessJson(*report, json_b);
    writeRobustnessCsv(*report, csv_a);
    writeRobustnessCsv(*report, csv_b);
    EXPECT_EQ(json_a.str(), json_b.str());
    EXPECT_EQ(csv_a.str(), csv_b.str());

    // The CSV carries one row per (cell, metric) plus two comment
    // lines and the header.
    size_t rows = 0;
    std::istringstream csv(csv_a.str());
    std::string line;
    while (std::getline(csv, line))
        ++rows;
    EXPECT_EQ(rows, 3 + robustnessMetricNames().size());
    // The JSON parses back as JSON (via the report parser's scanner).
    EXPECT_NE(json_a.str().find("\"curve_version\": 1"),
              std::string::npos);
}

} // namespace
} // namespace pes
