/**
 * @file
 * Tests for the simulation engine: timing/energy mechanics under scripted
 * drivers, speculation commit/squash semantics, the Type I-IV classifier,
 * and result aggregation.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/governors.hh"
#include "core/oracle_scheduler.hh"
#include "sim/classifier.hh"
#include "sim/metrics.hh"
#include "sim/runtime_simulator.hh"
#include "trace/trace.hh"
#include "web/web_app.hh"

namespace pes {
namespace {

/** Minimal one-page app: a root with a scroll handler plus one button. */
WebApp
miniApp()
{
    WebApp app("mini");
    DomTree dom;
    dom.node(dom.root()).rect = {0, 0, 360, 1280};
    HandlerSpec move;
    move.type = DomEventType::Scroll;
    move.effect = {EffectKind::ScrollBy, kInvalidNode, -1, 300.0};
    move.medianWork = {0.3, 6.0};
    dom.addHandler(dom.root(), move);

    const NodeId button =
        dom.createNode(dom.root(), NodeRole::Button, {10, 100, 100, 44});
    HandlerSpec tap;
    tap.type = DomEventType::Click;
    tap.effect = {EffectKind::None, kInvalidNode, -1, 0.0};
    tap.medianWork = {3.0, 55.0};
    dom.addHandler(button, tap);
    app.addPage(std::move(dom));
    return app;
}

/** One Click event with a precisely known workload. */
TraceEvent
clickEvent(TimeMs arrival, Workload work)
{
    TraceEvent e;
    e.arrival = arrival;
    e.type = DomEventType::Click;
    e.node = 1;
    e.pageId = 0;
    e.x = 60;
    e.y = 122;
    e.callbackWork = work;
    // Leave renderWork zero so latency math is exact in tests.
    e.classKey = eventClassKey("mini", 0, 1, DomEventType::Click);
    return e;
}

InteractionTrace
makeTrace(std::vector<TraceEvent> events)
{
    InteractionTrace t;
    t.appName = "mini";
    t.events = std::move(events);
    return t;
}

/** Dispatches the queue head at one fixed configuration. */
class FixedConfigDriver : public SchedulerDriver
{
  public:
    explicit FixedConfigDriver(AcmpConfig config) : config_(config) {}
    std::string name() const override { return "Fixed"; }
    std::optional<WorkItem>
    nextWork(SimulatorApi &api) override
    {
        const auto front = api.pendingQueue().front();
        if (!front)
            return std::nullopt;
        WorkItem item;
        item.kind = WorkItem::Kind::Real;
        item.traceIndex = front->traceIndex;
        item.config = config_;
        return item;
    }

  private:
    AcmpConfig config_;
};

/**
 * Speculates position 0 once (with a configurable prediction), serves the
 * arrival from the frame when it matches, squashes otherwise; every later
 * event runs reactively at max.
 */
class OneShotSpeculator : public SchedulerDriver
{
  public:
    OneShotSpeculator(PredictedEvent predicted, bool matches)
        : predicted_(predicted), matches_(matches)
    {
    }
    std::string name() const override { return "OneShot"; }

    std::optional<WorkItem>
    nextWork(SimulatorApi &api) override
    {
        if (!dispatched_) {
            dispatched_ = true;
            WorkItem item;
            item.kind = WorkItem::Kind::Speculative;
            item.targetPosition = 0;
            item.predicted = predicted_;
            item.config = api.platform().minConfig();
            return item;
        }
        const auto front = api.pendingQueue().front();
        if (!front)
            return std::nullopt;
        WorkItem item;
        item.kind = WorkItem::Kind::Real;
        item.traceIndex = front->traceIndex;
        item.config = api.platform().maxConfig();
        return item;
    }

    void
    onWorkFinished(SimulatorApi &api, const CompletedWork &work) override
    {
        (void)api;
        if (work.item.kind == WorkItem::Kind::Speculative)
            frameId_ = work.workId;
    }

    void
    onArrival(SimulatorApi &api, int trace_index) override
    {
        if (trace_index != 0 || served_)
            return;
        served_ = true;
        if (matches_ && frameId_) {
            api.notePrediction(true);
            api.serveFromSpeculation(0, *frameId_);
        } else if (frameId_) {
            api.notePrediction(false);
            api.discardSpeculativeWork(*frameId_);
        }
    }

  private:
    PredictedEvent predicted_;
    bool matches_;
    bool dispatched_ = false;
    bool served_ = false;
    std::optional<uint64_t> frameId_;
};

class SimFixture : public ::testing::Test
{
  protected:
    AcmpPlatform soc = AcmpPlatform::exynos5410();
    PowerModel power{soc};
    WebApp app = miniApp();
    DvfsLatencyModel model{soc};
    VsyncClock vsync;
};

// --------------------------------------------------------- Reactive path

TEST_F(SimFixture, ReactiveLatencyMatchesModel)
{
    const Workload work{10.0, 180.0};  // 110 ms at big max
    const auto trace = makeTrace({clickEvent(1000.0, work)});
    RuntimeSimulator sim(soc, power, app);
    FixedConfigDriver driver(soc.maxConfig());
    const SimResult result = sim.run(trace, driver);

    ASSERT_EQ(result.events.size(), 1u);
    const EventRecord &rec = result.events[0];
    const TimeMs switch_cost =
        soc.switchCost(soc.minConfig(), soc.maxConfig());
    const TimeMs expected_finish =
        1000.0 + switch_cost + model.latency(work, soc.maxConfig());
    EXPECT_NEAR(rec.frameReady, expected_finish, 1e-6);
    EXPECT_NEAR(rec.displayed, vsync.nextVsyncAt(expected_finish), 1e-6);
    EXPECT_FALSE(rec.violated());  // 110 ms << 300 ms target
    EXPECT_FALSE(rec.servedSpeculatively);
}

TEST_F(SimFixture, SlowConfigViolatesDeadline)
{
    const Workload work{10.0, 180.0};  // >1 s on little@350
    const auto trace = makeTrace({clickEvent(500.0, work)});
    RuntimeSimulator sim(soc, power, app);
    FixedConfigDriver driver(soc.minConfig());
    const SimResult result = sim.run(trace, driver);
    EXPECT_TRUE(result.events[0].violated());
    EXPECT_NEAR(result.violationRate(), 1.0, 1e-12);
}

TEST_F(SimFixture, FifoUnderBurst)
{
    const Workload work{5.0, 90.0};
    const auto trace = makeTrace({clickEvent(100.0, work),
                                  clickEvent(110.0, work),
                                  clickEvent(120.0, work)});
    RuntimeSimulator sim(soc, power, app);
    FixedConfigDriver driver(soc.maxConfig());
    const SimResult result = sim.run(trace, driver);
    // Queueing: each event starts after the previous frame completes.
    EXPECT_GT(result.events[1].frameReady, result.events[0].frameReady);
    EXPECT_GT(result.events[2].frameReady, result.events[1].frameReady);
    EXPECT_GE(result.avgQueueLength, 1.0);
}

TEST_F(SimFixture, EnergyTagsPartitionTotal)
{
    const Workload work{10.0, 300.0};
    const auto trace = makeTrace({clickEvent(200.0, work),
                                  clickEvent(3000.0, work)});
    RuntimeSimulator sim(soc, power, app);
    FixedConfigDriver driver({CoreType::Big, 1200.0});
    const SimResult result = sim.run(trace, driver);
    EXPECT_NEAR(result.totalEnergy,
                result.busyEnergy + result.idleEnergy +
                    result.overheadEnergy + result.wasteEnergy,
                1e-6);
    EXPECT_GT(result.busyEnergy, 0.0);
    EXPECT_GT(result.idleEnergy, 0.0);
    EXPECT_GT(result.overheadEnergy, 0.0);  // config switches
    EXPECT_EQ(result.wasteEnergy, 0.0);     // nothing speculative
}

TEST_F(SimFixture, PerEventBusyEnergyMatchesPowerModel)
{
    const Workload work{0.0, 360.0};  // exactly 200 ms at big max
    const auto trace = makeTrace({clickEvent(100.0, work)});
    RuntimeSimulator sim(soc, power, app);
    FixedConfigDriver driver(soc.maxConfig());
    const SimResult result = sim.run(trace, driver);
    const EnergyMj expected =
        energyOf(power.busyPower(soc.maxConfig()), 200.0);
    EXPECT_NEAR(result.events[0].busyEnergy, expected, expected * 0.01);
    EXPECT_NEAR(result.events[0].execMs, 200.0, 0.01);
}

TEST_F(SimFixture, SessionStateCommittedAfterServe)
{
    // A scroll event moves the committed viewport.
    TraceEvent scroll;
    scroll.arrival = 50.0;
    scroll.type = DomEventType::Scroll;
    scroll.node = 0;
    scroll.callbackWork = {0.3, 6.0};
    const auto trace = makeTrace({scroll});
    RuntimeSimulator sim(soc, power, app);

    class Checker : public FixedConfigDriver
    {
      public:
        explicit Checker(AcmpConfig c) : FixedConfigDriver(c) {}
        void
        onWorkFinished(SimulatorApi &api, const CompletedWork &) override
        {
            scroll_after = api.session().viewport().scrollY;
        }
        double scroll_after = -1.0;
    } driver(soc.maxConfig());

    sim.run(trace, driver);
    EXPECT_DOUBLE_EQ(driver.scroll_after, 300.0);
}

// ------------------------------------------------------- Speculation

TEST_F(SimFixture, CommittedSpeculationServesInstantly)
{
    const Workload work{10.0, 180.0};
    const auto trace = makeTrace({clickEvent(2000.0, work)});
    RuntimeSimulator sim(soc, power, app);
    OneShotSpeculator driver({DomEventType::Click, 1, 0, 1.0}, true);
    const SimResult result = sim.run(trace, driver);

    const EventRecord &rec = result.events[0];
    EXPECT_TRUE(rec.servedSpeculatively);
    // The frame was ready long before arrival: latency is one VSync hop.
    EXPECT_LE(rec.latency(), vsync.periodMs() + 1e-6);
    EXPECT_LT(rec.frameReady, rec.arrival);
    EXPECT_EQ(result.predictionsMade, 1);
    EXPECT_EQ(result.predictionsCorrect, 1);
    EXPECT_EQ(result.wasteEnergy, 0.0);
}

TEST_F(SimFixture, SpeculativeTruthUsesActualWorkloadOnMatch)
{
    const Workload work{0.0, 360.0};  // little@350: 2160 ms
    const auto trace = makeTrace({clickEvent(5000.0, work)});
    RuntimeSimulator sim(soc, power, app);
    OneShotSpeculator driver({DomEventType::Click, 1, 0, 1.0}, true);
    const SimResult result = sim.run(trace, driver);
    // Frame generation on little@350 must reflect the true workload.
    const TimeMs expected =
        model.latency(work, soc.minConfig());
    EXPECT_NEAR(result.events[0].execMs, expected, 1.0);
}

TEST_F(SimFixture, SquashedSpeculationBecomesWaste)
{
    const Workload work{10.0, 180.0};
    const auto trace = makeTrace({clickEvent(3000.0, work)});
    RuntimeSimulator sim(soc, power, app);
    // Predict a scroll; the actual click mismatches -> squash.
    OneShotSpeculator driver({DomEventType::Scroll, 0, 0, 1.0}, false);
    const SimResult result = sim.run(trace, driver);

    const EventRecord &rec = result.events[0];
    EXPECT_FALSE(rec.servedSpeculatively);
    EXPECT_FALSE(rec.violated());  // reactive handling at max still meets
    EXPECT_GT(result.wasteEnergy, 0.0);
    EXPECT_GT(result.mispredictWasteMs, 0.0);
    EXPECT_EQ(result.mispredictions, 1);
    EXPECT_NEAR(result.totalEnergy,
                result.busyEnergy + result.idleEnergy +
                    result.overheadEnergy + result.wasteEnergy,
                1e-6);
}

TEST_F(SimFixture, SchedulerOverheadCharged)
{
    const Workload work{5.0, 90.0};
    const auto trace = makeTrace({clickEvent(100.0, work)});
    RuntimeSimulator sim(soc, power, app);

    class OverheadDriver : public FixedConfigDriver
    {
      public:
        explicit OverheadDriver(AcmpConfig c) : FixedConfigDriver(c) {}
        void
        begin(SimulatorApi &api) override
        {
            api.chargeSchedulerOverhead(10.0);
        }
    } driver(soc.maxConfig());

    const SimResult result = sim.run(trace, driver);
    EXPECT_GT(result.overheadEnergy, 0.0);
}

// --------------------------------------------------------- Classifier

class ClassifierFixture : public ::testing::Test
{
  protected:
    AcmpPlatform soc = AcmpPlatform::exynos5410();
    PowerModel power{soc};
    EventClassifier classifier{soc, power};
    DvfsLatencyModel model{soc};

    EventRecord
    record(const TraceEvent &e, TimeMs latency, EnergyMj busy)
    {
        EventRecord r;
        r.traceIndex = 0;
        r.type = e.type;
        r.arrival = e.arrival;
        r.qosTarget = e.qosTarget();
        r.frameReady = e.arrival + latency;
        r.displayed = e.arrival + latency;
        r.busyEnergy = busy;
        return r;
    }
};

TEST_F(ClassifierFixture, TypeIInherentlyHeavy)
{
    // Even big@max cannot meet 300 ms.
    const TraceEvent e = clickEvent(1000.0, {50.0, 600.0});
    EXPECT_EQ(classifier.minimalIsolatedConfig(e), -1);
    const EventRecord r = record(e, 400.0, 700.0);
    EXPECT_EQ(classifier.classify(e, r), EventCategory::TypeI);
}

TEST_F(ClassifierFixture, TypeIIInterferenceVictim)
{
    // Feasible in isolation, but it violated at runtime.
    const TraceEvent e = clickEvent(1000.0, {5.0, 90.0});
    EXPECT_GE(classifier.minimalIsolatedConfig(e), 0);
    const EventRecord r = record(e, 450.0, 100.0);
    EXPECT_EQ(classifier.classify(e, r), EventCategory::TypeII);
}

TEST_F(ClassifierFixture, TypeIIIOverProvisioned)
{
    // Met the deadline, but at far higher energy than the isolated
    // minimum requires.
    const TraceEvent e = clickEvent(1000.0, {5.0, 90.0});
    const int minimal = classifier.minimalIsolatedConfig(e);
    ASSERT_GE(minimal, 0);
    const EnergyMj minimal_energy = energyOf(
        power.busyPowerAt(minimal),
        model.latencyAt(e.totalWork(), minimal));
    const EventRecord r = record(e, 60.0, minimal_energy * 3.0);
    EXPECT_EQ(classifier.classify(e, r), EventCategory::TypeIII);
}

TEST_F(ClassifierFixture, TypeIVBenign)
{
    const TraceEvent e = clickEvent(1000.0, {5.0, 90.0});
    const int minimal = classifier.minimalIsolatedConfig(e);
    ASSERT_GE(minimal, 0);
    const EnergyMj minimal_energy = energyOf(
        power.busyPowerAt(minimal),
        model.latencyAt(e.totalWork(), minimal));
    const EventRecord r = record(e, 250.0, minimal_energy);
    EXPECT_EQ(classifier.classify(e, r), EventCategory::TypeIV);
}

TEST_F(ClassifierFixture, DistributionBookkeeping)
{
    CategoryDistribution dist;
    dist.counts = {1, 2, 3, 4};
    EXPECT_EQ(dist.total(), 10);
    EXPECT_NEAR(dist.fraction(EventCategory::TypeII), 0.2, 1e-12);
    CategoryDistribution other;
    other.counts = {1, 0, 0, 1};
    dist.merge(other);
    EXPECT_EQ(dist.total(), 12);
    EXPECT_EQ(dist.counts[0], 2);
}

TEST_F(ClassifierFixture, MinimalConfigPrefersCheapest)
{
    // A tiny move: many configs meet 33 ms; the minimal-energy one must
    // not be the fastest.
    TraceEvent e;
    e.arrival = 1000.0;
    e.type = DomEventType::Scroll;
    e.callbackWork = {0.2, 3.0};
    const int minimal = classifier.minimalIsolatedConfig(e);
    ASSERT_GE(minimal, 0);
    EXPECT_NE(soc.configAt(minimal), soc.maxConfig());
}

// ----------------------------------------------------------- Metrics

SimResult
syntheticResult(const std::string &app, const std::string &sched,
                EnergyMj energy, int violations, int events)
{
    SimResult r;
    r.appName = app;
    r.schedulerName = sched;
    r.totalEnergy = energy;
    for (int i = 0; i < events; ++i) {
        EventRecord e;
        e.arrival = i * 100.0;
        e.qosTarget = 300.0;
        e.displayed = e.arrival + (i < violations ? 400.0 : 100.0);
        r.events.push_back(e);
    }
    return r;
}

TEST(ResultSet, GroupSummaries)
{
    ResultSet rs;
    rs.add(syntheticResult("cnn", "EBS", 1000.0, 2, 10));
    rs.add(syntheticResult("cnn", "EBS", 2000.0, 0, 10));
    rs.add(syntheticResult("cnn", "PES", 1200.0, 1, 10));
    rs.add(syntheticResult("bbc", "EBS", 500.0, 5, 10));

    const GroupSummary ebs_cnn = rs.summarize("cnn", "EBS");
    EXPECT_EQ(ebs_cnn.traces, 2);
    EXPECT_EQ(ebs_cnn.events, 20);
    EXPECT_NEAR(ebs_cnn.meanEnergy, 1500.0, 1e-9);
    EXPECT_NEAR(ebs_cnn.violationRate, 0.1, 1e-12);

    EXPECT_EQ(rs.apps(), (std::vector<std::string>{"cnn", "bbc"}));
    EXPECT_EQ(rs.schedulers(), (std::vector<std::string>{"EBS", "PES"}));

    const GroupSummary all_ebs = rs.summarizeScheduler("EBS");
    EXPECT_EQ(all_ebs.traces, 3);
}

TEST(ResultSet, NormalizedEnergy)
{
    ResultSet rs;
    rs.add(syntheticResult("cnn", "Interactive", 2000.0, 0, 5));
    rs.add(syntheticResult("cnn", "PES", 1500.0, 0, 5));
    rs.add(syntheticResult("bbc", "Interactive", 1000.0, 0, 5));
    rs.add(syntheticResult("bbc", "PES", 900.0, 0, 5));
    EXPECT_NEAR(rs.normalizedEnergy("cnn", "PES", "Interactive"), 0.75,
                1e-12);
    EXPECT_NEAR(rs.meanNormalizedEnergy({"cnn", "bbc"}, "PES",
                                        "Interactive"),
                (0.75 + 0.9) / 2.0, 1e-12);
    // Missing groups degrade to 1.0.
    EXPECT_NEAR(rs.normalizedEnergy("cnn", "Oracle", "Interactive"), 1.0,
                1e-12);
}


// ----------------------------------------------- Config-sweep property

/** The reactive latency law must hold on every one of the 17 configs. */
class ConfigSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(ConfigSweep, LatencyLawHoldsEverywhere)
{
    AcmpPlatform soc = AcmpPlatform::exynos5410();
    PowerModel power(soc);
    WebApp app = miniApp();
    DvfsLatencyModel model(soc);
    VsyncClock vsync;

    const AcmpConfig cfg = soc.configAt(GetParam());
    const Workload work{4.0, 120.0};
    const auto trace = makeTrace({clickEvent(777.0, work)});
    RuntimeSimulator sim(soc, power, app);
    FixedConfigDriver driver(cfg);
    const SimResult result = sim.run(trace, driver);

    const TimeMs expected_finish = 777.0 +
        soc.switchCost(soc.minConfig(), cfg) + model.latency(work, cfg);
    EXPECT_NEAR(result.events[0].frameReady, expected_finish, 1e-6);
    EXPECT_NEAR(result.events[0].displayed,
                vsync.nextVsyncAt(expected_finish), 1e-6);
    const EnergyMj expected_busy =
        energyOf(power.busyPower(cfg), model.latency(work, cfg));
    EXPECT_NEAR(result.events[0].busyEnergy, expected_busy,
                expected_busy * 0.01);
}

INSTANTIATE_TEST_SUITE_P(All17Configs, ConfigSweep,
                         ::testing::Range(0, 17));

// ------------------------------------------------------- Governor ticks

TEST_F(SimFixture, InteractiveGovernorRampsOnLoad)
{
    // A long event at the post-idle configuration must be finished at
    // the hispeed configuration after the first 20 ms tick, i.e. far
    // faster than an all-minConfig execution.
    const Workload work{10.0, 600.0};  // ~3.6 s at little@350
    const auto trace = makeTrace({clickEvent(1000.0, work)});
    RuntimeSimulator sim(soc, power, app);
    InteractiveGovernor governor;
    const SimResult result = sim.run(trace, governor);
    const TimeMs all_min = model.latency(work, soc.minConfig());
    const TimeMs all_max = model.latency(work, soc.maxConfig());
    EXPECT_LT(result.events[0].execMs, 0.25 * all_min);
    EXPECT_GT(result.events[0].execMs, all_max);
}

TEST_F(SimFixture, OndemandSlowerRampThanInteractive)
{
    // Ondemand's 100 ms sampling leaves more of the event at the idle
    // configuration than Interactive's 20 ms timer.
    const Workload work{10.0, 600.0};
    const auto trace = makeTrace({clickEvent(1000.0, work)});
    InteractiveGovernor interactive;
    OndemandGovernor ondemand;
    RuntimeSimulator sim_a(soc, power, app);
    RuntimeSimulator sim_b(soc, power, app);
    const SimResult fast = sim_a.run(trace, interactive);
    const SimResult slow = sim_b.run(trace, ondemand);
    EXPECT_LT(fast.events[0].frameReady, slow.events[0].frameReady);
}

TEST_F(SimFixture, GovernorsDecayAfterIdle)
{
    // Two events separated by seconds of idle: the second starts from a
    // decayed configuration again (latency similar to the first's).
    const Workload work{5.0, 200.0};
    const auto trace = makeTrace({clickEvent(1000.0, work),
                                  clickEvent(8000.0, work)});
    RuntimeSimulator sim(soc, power, app);
    InteractiveGovernor governor;
    const SimResult result = sim.run(trace, governor);
    EXPECT_NEAR(result.events[1].execMs, result.events[0].execMs,
                result.events[0].execMs * 0.25);
}

// --------------------------------------------------------- Oracle unit

TEST_F(SimFixture, OraclePreExecutesAndMeetsEverything)
{
    const Workload heavy{20.0, 700.0};  // unmeetable reactively (300 ms)
    const auto trace = makeTrace({clickEvent(5000.0, {3.0, 55.0}),
                                  clickEvent(10000.0, heavy)});
    RuntimeSimulator sim(soc, power, app);
    OracleScheduler oracle;
    const SimResult result = sim.run(trace, oracle);
    EXPECT_NEAR(result.violationRate(), 0.0, 1e-12);
    // The heavy event's frame was ready before its arrival.
    EXPECT_LT(result.events[1].frameReady, result.events[1].arrival);
    EXPECT_TRUE(result.events[1].servedSpeculatively);
    EXPECT_EQ(oracle.plannedConfigs().size(), 2u);
}

TEST_F(SimFixture, BoostMeetsDeadlineForInFlightSpeculation)
{
    // Speculation starts on little@350 shortly before the arrival; the
    // driver adopts and boosts, and the event still meets its target.
    const Workload work{5.0, 150.0};  // ~1 s at little@350

    class AdoptBooster : public SchedulerDriver
    {
      public:
        std::string name() const override { return "AdoptBooster"; }
        std::optional<WorkItem>
        nextWork(SimulatorApi &api) override
        {
            // Wait until shortly before the (known-to-the-test) arrival
            // so the frame cannot finish on the little cluster in time.
            if (dispatched_ || api.now() < 1800.0)
                return std::nullopt;
            dispatched_ = true;
            WorkItem item;
            item.kind = WorkItem::Kind::Speculative;
            item.targetPosition = 0;
            item.predicted = {DomEventType::Click, 1, 0, 1.0};
            item.config = api.platform().minConfig();
            return item;
        }
        TimeMs sampleIntervalMs() const override { return 100.0; }
        void
        onArrival(SimulatorApi &api, int trace_index) override
        {
            api.adoptInFlight(trace_index);
            const TraceEvent &ev = api.arrivedEvent(trace_index);
            const VsyncClock vsync;
            const TimeMs deadline = std::floor(
                (ev.arrival + ev.qosTarget()) / vsync.periodMs()) *
                vsync.periodMs();
            api.boostInFlightToMeet(deadline);
        }

      private:
        bool dispatched_ = false;
    } driver;

    const auto trace = makeTrace({clickEvent(2000.0, work)});
    RuntimeSimulator sim(soc, power, app);
    const SimResult result = sim.run(trace, driver);
    EXPECT_FALSE(result.events[0].violated());
    EXPECT_TRUE(result.events[0].servedSpeculatively);
}

} // namespace
} // namespace pes

