/**
 * @file
 * Tests for the solver substrate: simplex LP, branch-and-bound ILP, and
 * the specialized Pareto-DP schedule solver — including the property
 * suite asserting DP/ILP agreement on randomized Eqn.-5 instances.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "solver/ilp.hh"
#include "solver/lp.hh"
#include "solver/schedule_problem.hh"
#include "util/rng.hh"

namespace pes {
namespace {

// ---------------------------------------------------------------- LP

TEST(Simplex, TextbookMaximization)
{
    // max 3x + 5y st x <= 4, 2y <= 12, 3x + 2y <= 18 -> optimum 36 at
    // (2, 6).
    LinearProgram lp(2);
    lp.setObjective({3.0, 5.0});
    lp.addConstraint({1.0, 0.0}, Relation::LessEqual, 4.0);
    lp.addConstraint({0.0, 2.0}, Relation::LessEqual, 12.0);
    lp.addConstraint({3.0, 2.0}, Relation::LessEqual, 18.0);
    const LpResult result = lp.solve();
    ASSERT_EQ(result.status, LpStatus::Optimal);
    EXPECT_NEAR(result.objective, 36.0, 1e-9);
    EXPECT_NEAR(result.x[0], 2.0, 1e-9);
    EXPECT_NEAR(result.x[1], 6.0, 1e-9);
}

TEST(Simplex, EqualityConstraint)
{
    // max x + y st x + y = 5, x <= 3 -> 5, e.g. x=3,y=2.
    LinearProgram lp(2);
    lp.setObjective({1.0, 1.0});
    lp.addConstraint({1.0, 1.0}, Relation::Equal, 5.0);
    lp.addConstraint({1.0, 0.0}, Relation::LessEqual, 3.0);
    const LpResult result = lp.solve();
    ASSERT_EQ(result.status, LpStatus::Optimal);
    EXPECT_NEAR(result.objective, 5.0, 1e-9);
}

TEST(Simplex, GreaterEqualConstraint)
{
    // max -x st x >= 2 (i.e. min x) -> objective -2.
    LinearProgram lp(1);
    lp.setObjective({-1.0});
    lp.addConstraint({1.0}, Relation::GreaterEqual, 2.0);
    const LpResult result = lp.solve();
    ASSERT_EQ(result.status, LpStatus::Optimal);
    EXPECT_NEAR(result.objective, -2.0, 1e-9);
    EXPECT_NEAR(result.x[0], 2.0, 1e-9);
}

TEST(Simplex, DetectsInfeasible)
{
    LinearProgram lp(1);
    lp.setObjective({1.0});
    lp.addConstraint({1.0}, Relation::LessEqual, 1.0);
    lp.addConstraint({1.0}, Relation::GreaterEqual, 2.0);
    EXPECT_EQ(lp.solve().status, LpStatus::Infeasible);
}

TEST(Simplex, DetectsUnbounded)
{
    LinearProgram lp(1);
    lp.setObjective({1.0});
    lp.addConstraint({-1.0}, Relation::LessEqual, 0.0);  // x >= 0 only
    EXPECT_EQ(lp.solve().status, LpStatus::Unbounded);
}

TEST(Simplex, NegativeRhsNormalization)
{
    // x <= -1 written as -x >= 1: feasible at x ... wait, with x >= 0
    // the row x <= -1 is infeasible; the solver must see that.
    LinearProgram lp(1);
    lp.setObjective({1.0});
    lp.addConstraint({1.0}, Relation::LessEqual, -1.0);
    EXPECT_EQ(lp.solve().status, LpStatus::Infeasible);
}

TEST(Simplex, DegenerateInstanceTerminates)
{
    // Classic degenerate corner; Bland's rule must not cycle.
    LinearProgram lp(2);
    lp.setObjective({1.0, 1.0});
    lp.addConstraint({1.0, 0.0}, Relation::LessEqual, 1.0);
    lp.addConstraint({1.0, 0.0}, Relation::LessEqual, 1.0);
    lp.addConstraint({0.0, 1.0}, Relation::LessEqual, 1.0);
    const LpResult result = lp.solve();
    ASSERT_EQ(result.status, LpStatus::Optimal);
    EXPECT_NEAR(result.objective, 2.0, 1e-9);
}

// ---------------------------------------------------------------- ILP

TEST(Ilp, BinaryKnapsackByConstraints)
{
    // min -(values) st weights <= 5: items (v=6,w=4),(v=5,w=3),(v=5,w=2)
    // -> best = items 2+3 (v=10).
    IntegerProgram ilp(3);
    ilp.setObjective({-6.0, -5.0, -5.0});
    ilp.addConstraint({4.0, 3.0, 2.0}, Relation::LessEqual, 5.0);
    const IlpResult result = ilp.solve();
    ASSERT_EQ(result.status, IlpStatus::Optimal);
    EXPECT_NEAR(result.objective, -10.0, 1e-9);
    EXPECT_EQ(result.x[0], 0);
    EXPECT_EQ(result.x[1], 1);
    EXPECT_EQ(result.x[2], 1);
}

TEST(Ilp, AssignmentConstraint)
{
    // Exactly one of three options, minimize cost -> picks cheapest.
    IntegerProgram ilp(3);
    ilp.setObjective({5.0, 2.0, 9.0});
    ilp.addConstraint({1.0, 1.0, 1.0}, Relation::Equal, 1.0);
    const IlpResult result = ilp.solve();
    ASSERT_EQ(result.status, IlpStatus::Optimal);
    EXPECT_NEAR(result.objective, 2.0, 1e-9);
    EXPECT_EQ(result.x[1], 1);
}

TEST(Ilp, InfeasibleDetected)
{
    IntegerProgram ilp(2);
    ilp.setObjective({1.0, 1.0});
    ilp.addConstraint({1.0, 1.0}, Relation::GreaterEqual, 3.0);  // > 2
    EXPECT_EQ(ilp.solve().status, IlpStatus::Infeasible);
}

TEST(Ilp, FractionalRelaxationRequiresBranching)
{
    // LP relaxation is fractional; the ILP must still find the integral
    // optimum. min x1+x2 st 2x1+2x2 >= 3 -> LP 1.5, ILP 2.
    IntegerProgram ilp(2);
    ilp.setObjective({1.0, 1.0});
    ilp.addConstraint({2.0, 2.0}, Relation::GreaterEqual, 3.0);
    const IlpResult result = ilp.solve();
    ASSERT_EQ(result.status, IlpStatus::Optimal);
    EXPECT_NEAR(result.objective, 2.0, 1e-9);
    EXPECT_GT(result.nodesExplored, 1);
}

// ------------------------------------------------------------ ParetoDP

/** Build a simple two-config problem for hand-checks. */
ScheduleProblem
twoConfigProblem()
{
    // Config 0: slow and cheap (10 ms, 1 mJ); config 1: fast and costly
    // (2 ms, 5 mJ).
    ScheduleProblem problem;
    for (int i = 0; i < 3; ++i) {
        ScheduleEvent ev;
        ev.latency = {10.0, 2.0};
        ev.energy = {1.0, 5.0};
        ev.deadline = 1e9;
        problem.events.push_back(ev);
    }
    return problem;
}

TEST(ParetoDp, PicksCheapWhenDeadlinesLoose)
{
    const ScheduleProblem problem = twoConfigProblem();
    const ScheduleSolution sol = ParetoDpSolver().solve(problem);
    ASSERT_TRUE(sol.feasible);
    EXPECT_EQ(sol.configOf, (std::vector<int>{0, 0, 0}));
    EXPECT_NEAR(sol.totalEnergy, 3.0, 1e-9);
    EXPECT_NEAR(sol.finishTime.back(), 30.0, 1e-9);
}

TEST(ParetoDp, UsesFastConfigToMeetTightDeadline)
{
    ScheduleProblem problem = twoConfigProblem();
    problem.events[1].deadline = 13.0;  // slow+slow = 20 > 13
    const ScheduleSolution sol = ParetoDpSolver().solve(problem);
    ASSERT_TRUE(sol.feasible);
    // One of the first two events must be fast; the cheapest way is one
    // fast + one slow (12 ms <= 13), then slow.
    EXPECT_NEAR(sol.totalEnergy, 7.0, 1e-9);
    EXPECT_LE(sol.finishTime[1], 13.0 + 1e-9);
}

TEST(ParetoDp, LexicographicTardinessWhenInfeasible)
{
    ScheduleProblem problem = twoConfigProblem();
    problem.events[0].deadline = 1.0;  // unmeetable (fastest is 2 ms)
    const ScheduleSolution sol = ParetoDpSolver().solve(problem);
    EXPECT_FALSE(sol.feasible);
    // Minimum possible tardiness = 2 - 1 = 1 (run event 0 fast).
    EXPECT_NEAR(sol.totalTardiness, 1.0, 1e-9);
    EXPECT_EQ(sol.configOf[0], 1);
}

TEST(ParetoDp, SwitchCostsCharged)
{
    ScheduleProblem problem = twoConfigProblem();
    problem.events.resize(2);
    problem.switchCost = {{0.0, 1.0}, {1.0, 0.0}};
    problem.initialConfig = 0;
    problem.events[0].deadline = 1e9;
    problem.events[1].deadline = 1e9;
    const ScheduleSolution sol = ParetoDpSolver().solve(problem);
    ASSERT_TRUE(sol.feasible);
    // All-slow from initial 0: no switches, finish 20.
    EXPECT_EQ(sol.configOf, (std::vector<int>{0, 0}));
    EXPECT_NEAR(sol.finishTime.back(), 20.0, 1e-9);
}

TEST(ParetoDp, SwitchCostCanMakeStayingCheaperFeasible)
{
    // Deadline forces event 0 fast; event 1 can then be slow but pays a
    // switch back. The DP must account for both transitions.
    ScheduleProblem problem = twoConfigProblem();
    problem.events.resize(2);
    problem.switchCost = {{0.0, 3.0}, {3.0, 0.0}};
    problem.initialConfig = 1;
    problem.events[0].deadline = 2.5;   // fast only (no switch from 1)
    problem.events[1].deadline = 16.0;
    const ScheduleSolution sol = ParetoDpSolver().solve(problem);
    ASSERT_TRUE(sol.feasible);
    EXPECT_EQ(sol.configOf[0], 1);
    // Slow for event 1: 2 + 3 (switch) + 10 = 15 <= 16 -> feasible and
    // cheaper.
    EXPECT_EQ(sol.configOf[1], 0);
}

TEST(ParetoDp, EmptyProblemIsTriviallyFeasible)
{
    const ScheduleSolution sol = ParetoDpSolver().solve(ScheduleProblem{});
    EXPECT_TRUE(sol.feasible);
    EXPECT_EQ(sol.totalEnergy, 0.0);
}

TEST(ParetoDp, LongChainStaysFast)
{
    // 80 events x 17 configs must solve in well under a second (the
    // regression that once hung the oracle).
    Rng rng(77);
    ScheduleProblem problem;
    for (int i = 0; i < 80; ++i) {
        ScheduleEvent ev;
        for (int j = 0; j < 17; ++j) {
            const double lat = rng.uniform(1.0, 50.0);
            ev.latency.push_back(lat);
            ev.energy.push_back(lat * rng.uniform(0.1, 3.0));
        }
        ev.deadline = 40.0 * (i + 1);
        problem.events.push_back(ev);
    }
    const ScheduleSolution sol = ParetoDpSolver().solve(problem);
    EXPECT_EQ(sol.configOf.size(), 80u);
}

// ---------------------- DP == ILP equivalence (property) ----------------

/** Random Eqn.-5 instances; the DP must match branch-and-bound exactly. */
class DpIlpEquivalence : public ::testing::TestWithParam<int>
{
};

TEST_P(DpIlpEquivalence, SameOptimalEnergy)
{
    Rng rng(static_cast<uint64_t>(GetParam()) * 7919 + 13);
    const int n = rng.uniformInt(2, 5);
    const int c = rng.uniformInt(2, 4);

    ScheduleProblem problem;
    double chain_min = 0.0;
    for (int i = 0; i < n; ++i) {
        ScheduleEvent ev;
        double fastest = std::numeric_limits<double>::infinity();
        for (int j = 0; j < c; ++j) {
            const double lat = rng.uniform(1.0, 20.0);
            ev.latency.push_back(lat);
            // Faster should generally be costlier, with noise.
            ev.energy.push_back((30.0 - lat) * rng.uniform(0.5, 1.5));
            fastest = std::min(fastest, lat);
        }
        chain_min += fastest;
        // Deadline: sometimes tight, sometimes loose, always feasible.
        ev.deadline = chain_min * rng.uniform(1.05, 2.5);
        problem.events.push_back(ev);
    }

    const ScheduleSolution dp = ParetoDpSolver().solve(problem);
    ASSERT_TRUE(dp.feasible);

    IntegerProgram ilp = problem.toIlp();
    const IlpResult reference = ilp.solve();
    ASSERT_EQ(reference.status, IlpStatus::Optimal);

    EXPECT_NEAR(dp.totalEnergy, reference.objective, 1e-6)
        << "DP and branch-and-bound disagree on instance "
        << GetParam();
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, DpIlpEquivalence,
                         ::testing::Range(0, 25));

/** The DP solution must satisfy every constraint it claims to satisfy. */
class DpFeasibilityCheck : public ::testing::TestWithParam<int>
{
};

TEST_P(DpFeasibilityCheck, ReportedScheduleIsConsistent)
{
    Rng rng(static_cast<uint64_t>(GetParam()) * 104729 + 7);
    const int n = rng.uniformInt(2, 8);
    const int c = rng.uniformInt(2, 6);

    ScheduleProblem problem;
    for (int i = 0; i < n; ++i) {
        ScheduleEvent ev;
        for (int j = 0; j < c; ++j) {
            ev.latency.push_back(rng.uniform(1.0, 30.0));
            ev.energy.push_back(rng.uniform(1.0, 50.0));
        }
        ev.deadline = rng.uniform(5.0, 40.0 * n);
        problem.events.push_back(ev);
    }

    const ScheduleSolution sol = ParetoDpSolver().solve(problem);
    // Recompute the chain from the reported configs.
    double t = 0.0;
    double energy = 0.0;
    double tardiness = 0.0;
    for (int i = 0; i < n; ++i) {
        const int j = sol.configOf[static_cast<size_t>(i)];
        t += problem.events[static_cast<size_t>(i)]
                 .latency[static_cast<size_t>(j)];
        energy += problem.events[static_cast<size_t>(i)]
                      .energy[static_cast<size_t>(j)];
        tardiness += std::max(
            0.0, t - problem.events[static_cast<size_t>(i)].deadline);
        EXPECT_NEAR(sol.finishTime[static_cast<size_t>(i)], t, 1e-9);
    }
    EXPECT_NEAR(sol.totalEnergy, energy, 1e-9);
    EXPECT_NEAR(sol.totalTardiness, tardiness, 1e-9);
    EXPECT_EQ(sol.feasible, tardiness <= 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, DpFeasibilityCheck,
                         ::testing::Range(0, 20));

TEST(ScheduleProblem, ToIlpRejectsSwitchCosts)
{
    ScheduleProblem problem = twoConfigProblem();
    problem.switchCost = {{0.0, 1.0}, {1.0, 0.0}};
    EXPECT_DEATH((void)problem.toIlp(), "switch costs");
}

} // namespace
} // namespace pes
