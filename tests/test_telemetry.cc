/**
 * @file
 * Tests for the telemetry subsystem: the no-feedback contract (reports
 * byte-identical with telemetry on or off, any thread count), trace
 * JSON well-formedness against our own parser, the committed
 * logical-clock trace golden, RunTelemetry serialization round-trips,
 * and canonical-order counter merging.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>
#include <thread>
#include <vector>

#include "runner/fleet_runner.hh"
#include "runner/reporters.hh"
#include "telemetry/run_telemetry.hh"
#include "telemetry/telemetry.hh"
#include "telemetry/trace_sink.hh"
#include "util/json.hh"

namespace pes {
namespace {

/** Whole file as a string ("" when unreadable). */
std::string
readFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

/** The golden mini sweep (tools/regen_golden.sh; keep in sync). */
FleetConfig
miniConfig(int threads)
{
    FleetConfig config;
    config.schedulers = {SchedulerKind::Ebs, SchedulerKind::Interactive};
    config.apps = {appByName("cnn"), appByName("social_feed")};
    config.users = 3;
    config.threads = threads;
    config.baseSeed = 0xf1ee7;
    return config;
}

/** Run @p config and serialize its report (JSON + CSV concatenated). */
std::string
reportBytes(FleetConfig config)
{
    FleetRunner runner(std::move(config));
    const FleetOutcome outcome = runner.run();
    EXPECT_TRUE(outcome.diagnostics.empty());
    const FleetReport report =
        makeFleetReport(runner.config(), outcome.metrics);
    return JsonReporter::toString(report) + CsvReporter::toString(report);
}

// ------------------------------------------------ no-feedback contract

TEST(TelemetryDeterminism, ReportsByteIdenticalOnVsOffAnyThreads)
{
    const std::string plain_t1 = reportBytes(miniConfig(1));

    for (const int threads : {1, 8}) {
        TelemetryRegistry telemetry;
        TraceEventSink sink(TraceEventSink::Clock::Wall);
        FleetConfig armed = miniConfig(threads);
        armed.telemetry = &telemetry;
        armed.traceSink = &sink;
        EXPECT_EQ(reportBytes(std::move(armed)), plain_t1)
            << "telemetry changed report bytes at threads=" << threads;
        EXPECT_GT(sink.eventCount(), 0u);
    }
}

TEST(TelemetryDeterminism, DisabledRegistryRecordsNothing)
{
    TelemetryRegistry telemetry;
    telemetry.setEnabled(false);
    FleetConfig config = miniConfig(2);
    config.telemetry = &telemetry;
    FleetRunner runner(std::move(config));
    runner.run();
    const TelemetrySnapshot snap = telemetry.snapshot();
    EXPECT_TRUE(snap.counters.empty());
    EXPECT_TRUE(snap.durations.empty());
}

// -------------------------------------------------------- trace sink

TEST(TraceSink, EmittedJsonParsesWithOwnParser)
{
    TelemetryRegistry telemetry;
    TraceEventSink sink(TraceEventSink::Clock::Wall);
    FleetConfig config = miniConfig(2);
    config.telemetry = &telemetry;
    config.traceSink = &sink;
    FleetRunner runner(std::move(config));
    runner.run();

    std::ostringstream os;
    sink.write(os);
    const auto doc = parseJson(os.str());
    ASSERT_TRUE(doc.has_value()) << "trace JSON is malformed";
    const JsonValue *events = doc->find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_EQ(events->kind, JsonValue::Kind::Array);

    // Metadata names every lane; every span carries the Chrome
    // trace-event required keys; stage spans sit on lane 0.
    int metadata = 0, stages = 0, jobs = 0;
    for (const JsonValue &e : events->arr) {
        const JsonValue *ph = e.find("ph");
        ASSERT_NE(ph, nullptr);
        ASSERT_NE(e.find("pid"), nullptr);
        ASSERT_NE(e.find("tid"), nullptr);
        if (ph->str == "M") {
            ++metadata;
            continue;
        }
        ASSERT_NE(e.find("ts"), nullptr);
        ASSERT_NE(e.find("name"), nullptr);
        if (ph->str == "X" && e.find("cat")->str == "stage") {
            ++stages;
            EXPECT_EQ(e.find("tid")->number64(), 0u);
        }
        if (ph->str == "X" && e.find("cat")->str == "job")
            ++jobs;
    }
    EXPECT_EQ(metadata, 2 + 2);  // runner + store + 2 worker lanes
    EXPECT_EQ(stages, 4);        // plan, execute, persist, reduce
    EXPECT_EQ(jobs, 12);         // one span per session
}

TEST(TraceSink, LogicalClockMatchesCommittedGolden)
{
    TraceEventSink sink(TraceEventSink::Clock::Logical);
    // threads=1: a single worker drains the queue in canonical order,
    // so every logical tick is fully determined (the golden contract).
    FleetConfig config = miniConfig(1);
    config.traceSink = &sink;
    FleetRunner runner(std::move(config));
    runner.run();

    std::ostringstream os;
    sink.write(os);
    const std::string golden = readFile(
        PES_SOURCE_DIR "/tests/data/golden/mini_sweep.trace.json");
    ASSERT_FALSE(golden.empty())
        << "missing committed trace golden; run tools/regen_golden.sh";
    EXPECT_EQ(os.str(), golden)
        << "logical-clock trace changed; if intentional, regenerate "
           "via `cmake --build build --target regen-golden` and commit";
}

TEST(TraceSink, InstantEventsRecordCacheEvictions)
{
    TraceEventSink sink(TraceEventSink::Clock::Logical);
    FleetConfig config = miniConfig(1);
    config.traceSink = &sink;
    config.traceCacheCap = 2;  // 4 distinct traces -> must evict
    FleetRunner runner(std::move(config));
    runner.run();

    std::ostringstream os;
    sink.write(os);
    const auto doc = parseJson(os.str());
    ASSERT_TRUE(doc.has_value());
    int evictions = 0;
    for (const JsonValue &e : doc->find("traceEvents")->arr) {
        if (e.find("ph")->str == "i" &&
            e.find("name")->str == "cache evict")
            ++evictions;
    }
    EXPECT_GT(evictions, 0);
}

// ------------------------------------------------------ RunTelemetry

TEST(RunTelemetry, JsonRoundTripPreservesEveryField)
{
    RunTelemetry t;
    t.tool = "stress";
    t.scenario = "burst@0.5";
    t.logicalClock = false;
    t.threads = 8;
    t.sessions = 1200;
    t.events = 65536;
    t.planMs = 1.5;
    t.executeMs = 250.25;
    t.persistMs = 8.125;
    t.reduceMs = 2.5;
    t.totalMs = 262.375;
    t.cacheHits = 900;
    t.cacheMisses = 300;
    t.cacheEvictions = 7;
    t.cacheDuplicateSynthesis = 2;
    t.checkpointFlushes = 3;
    t.checkpointBytes = 4096;
    t.poolTasks = 1200;
    t.poolMaxQueueDepth = 64;
    t.poolBusyMs = 1999.5;
    t.poolIdleMs = 0.5;
    // Exact binary fractions: %.10g must round-trip them exactly.
    t.sessionsPerSec = 4800.0;
    t.eventsPerSec = 262144.5;
    t.parallelEfficiency = 0.75;
    t.cacheLockWaits = 11;
    t.cacheLockWaitMs = 1.25;
    t.persistLockWaits = 5;
    t.persistLockWaitMs = 0.5;
    t.poolQueueTasks = 1200;
    t.poolQueueWaitMs = 6.0;
    t.poolQueueWaitMeanMs = 0.005;
    t.workers = {{600, 900.25, 0.25, 3.5}, {600, 899.5, 1.0, 2.5}};
    t.counters.counters = {{"sim.events", 65536},
                           {"sim.sessions", 1200}};
    t.counters.gauges = {{"pool.depth", 64.0}};
    DurationStats d;
    d.record(1.0);
    d.record(2.0);
    t.counters.durations = {{"runner.job_ms", d}};

    const auto parsed = parseRunTelemetry(runTelemetryToString(t));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->tool, t.tool);
    EXPECT_EQ(parsed->scenario, t.scenario);
    EXPECT_EQ(parsed->logicalClock, t.logicalClock);
    EXPECT_EQ(parsed->threads, t.threads);
    EXPECT_EQ(parsed->sessions, t.sessions);
    EXPECT_EQ(parsed->events, t.events);
    EXPECT_DOUBLE_EQ(parsed->sessionsPerSec, t.sessionsPerSec);
    EXPECT_DOUBLE_EQ(parsed->eventsPerSec, t.eventsPerSec);
    EXPECT_DOUBLE_EQ(parsed->planMs, t.planMs);
    EXPECT_DOUBLE_EQ(parsed->executeMs, t.executeMs);
    EXPECT_DOUBLE_EQ(parsed->persistMs, t.persistMs);
    EXPECT_DOUBLE_EQ(parsed->reduceMs, t.reduceMs);
    EXPECT_DOUBLE_EQ(parsed->totalMs, t.totalMs);
    EXPECT_EQ(parsed->cacheHits, t.cacheHits);
    EXPECT_EQ(parsed->cacheMisses, t.cacheMisses);
    EXPECT_EQ(parsed->cacheEvictions, t.cacheEvictions);
    EXPECT_EQ(parsed->cacheDuplicateSynthesis, t.cacheDuplicateSynthesis);
    EXPECT_EQ(parsed->checkpointFlushes, t.checkpointFlushes);
    EXPECT_EQ(parsed->checkpointBytes, t.checkpointBytes);
    EXPECT_EQ(parsed->poolTasks, t.poolTasks);
    EXPECT_EQ(parsed->poolMaxQueueDepth, t.poolMaxQueueDepth);
    EXPECT_DOUBLE_EQ(parsed->poolBusyMs, t.poolBusyMs);
    EXPECT_DOUBLE_EQ(parsed->poolIdleMs, t.poolIdleMs);
    EXPECT_DOUBLE_EQ(parsed->parallelEfficiency, t.parallelEfficiency);
    EXPECT_EQ(parsed->cacheLockWaits, t.cacheLockWaits);
    EXPECT_DOUBLE_EQ(parsed->cacheLockWaitMs, t.cacheLockWaitMs);
    EXPECT_EQ(parsed->persistLockWaits, t.persistLockWaits);
    EXPECT_DOUBLE_EQ(parsed->persistLockWaitMs, t.persistLockWaitMs);
    EXPECT_EQ(parsed->poolQueueTasks, t.poolQueueTasks);
    EXPECT_DOUBLE_EQ(parsed->poolQueueWaitMs, t.poolQueueWaitMs);
    EXPECT_DOUBLE_EQ(parsed->poolQueueWaitMeanMs, t.poolQueueWaitMeanMs);
    ASSERT_EQ(parsed->workers.size(), 2u);
    EXPECT_EQ(parsed->workers[0].tasks, 600u);
    EXPECT_DOUBLE_EQ(parsed->workers[0].busyMs, 900.25);
    EXPECT_DOUBLE_EQ(parsed->workers[0].idleMs, 0.25);
    EXPECT_DOUBLE_EQ(parsed->workers[0].queueWaitMs, 3.5);
    EXPECT_DOUBLE_EQ(parsed->workers[1].queueWaitMs, 2.5);
    ASSERT_EQ(parsed->counters.counters.size(), 2u);
    EXPECT_EQ(parsed->counters.counters[0].first, "sim.events");
    EXPECT_EQ(parsed->counters.counters[1].second, 1200u);
    ASSERT_EQ(parsed->counters.gauges.size(), 1u);
    EXPECT_DOUBLE_EQ(parsed->counters.gauges[0].second, 64.0);
    ASSERT_EQ(parsed->counters.durations.size(), 1u);
    const DurationStats &rd = parsed->counters.durations[0].second;
    EXPECT_EQ(rd.count, 2u);
    EXPECT_DOUBLE_EQ(rd.sumMs, 3.0);
    EXPECT_DOUBLE_EQ(rd.minMs, 1.0);
    EXPECT_DOUBLE_EQ(rd.maxMs, 2.0);
    EXPECT_EQ(rd.buckets, d.buckets);

    // Round-trip is a fixed point: re-serializing parses identically.
    EXPECT_EQ(runTelemetryToString(*parsed), runTelemetryToString(t));
}

TEST(RunTelemetry, RejectsMalformedAndWrongVersion)
{
    EXPECT_FALSE(parseRunTelemetry("not json").has_value());
    EXPECT_FALSE(parseRunTelemetry("{}").has_value());
    RunTelemetry t;
    std::string text = runTelemetryToString(t);
    const std::string needle = "\"telemetry_version\": 4";
    const size_t at = text.find(needle);
    ASSERT_NE(at, std::string::npos);
    text.replace(at, needle.size(), "\"telemetry_version\": 999");
    EXPECT_FALSE(parseRunTelemetry(text).has_value());
}

TEST(RunTelemetry, FoldSumsAndMaxesIntoRollup)
{
    RunTelemetry a;
    a.tool = "stress";
    a.threads = 4;
    a.sessions = 10;
    a.events = 100;
    a.executeMs = 50.0;
    a.poolMaxQueueDepth = 8;
    a.cacheHits = 5;
    a.cacheDuplicateSynthesis = 1;
    a.cacheLockWaits = 3;
    a.cacheLockWaitMs = 0.5;
    a.poolQueueTasks = 10;
    a.poolQueueWaitMs = 1.0;
    a.poolQueueWaitMeanMs = 0.1;
    a.workers = {{10, 40.0, 10.0, 1.0}};
    a.counters.counters = {{"sim.sessions", 10}};

    RunTelemetry b = a;
    b.sessions = 30;
    b.events = 300;
    b.executeMs = 150.0;
    b.poolMaxQueueDepth = 2;
    b.poolQueueTasks = 30;
    b.poolQueueWaitMs = 5.0;
    b.poolQueueWaitMeanMs = 5.0 / 30.0;
    // One more worker lane than a: fold must widen, not truncate.
    b.workers = {{30, 120.0, 30.0, 2.0}, {5, 20.0, 5.0, 0.5}};
    b.counters.counters = {{"sim.sessions", 30}};

    RunTelemetry rollup;
    foldRunTelemetry(rollup, a);
    foldRunTelemetry(rollup, b);
    EXPECT_EQ(rollup.tool, "stress");
    EXPECT_EQ(rollup.threads, 4);
    EXPECT_EQ(rollup.sessions, 40u);
    EXPECT_EQ(rollup.events, 400u);
    EXPECT_DOUBLE_EQ(rollup.executeMs, 200.0);
    EXPECT_EQ(rollup.poolMaxQueueDepth, 8u);
    EXPECT_EQ(rollup.cacheHits, 10u);
    EXPECT_EQ(rollup.cacheDuplicateSynthesis, 2u);
    EXPECT_EQ(rollup.cacheLockWaits, 6u);
    EXPECT_DOUBLE_EQ(rollup.cacheLockWaitMs, 1.0);
    EXPECT_EQ(rollup.poolQueueTasks, 40u);
    EXPECT_DOUBLE_EQ(rollup.poolQueueWaitMs, 6.0);
    // The folded mean recomputes from the folded totals, not the means.
    EXPECT_DOUBLE_EQ(rollup.poolQueueWaitMeanMs, 6.0 / 40.0);
    ASSERT_EQ(rollup.workers.size(), 2u);  // widened to the max
    EXPECT_EQ(rollup.workers[0].tasks, 40u);
    EXPECT_DOUBLE_EQ(rollup.workers[0].busyMs, 160.0);
    EXPECT_DOUBLE_EQ(rollup.workers[0].queueWaitMs, 3.0);
    EXPECT_EQ(rollup.workers[1].tasks, 5u);
    ASSERT_EQ(rollup.counters.counters.size(), 1u);
    EXPECT_EQ(rollup.counters.counters[0].second, 40u);
    EXPECT_DOUBLE_EQ(rollup.sessionsPerSec, 40.0 / 0.2);
}

TEST(RunTelemetry, FoldGuardsZeroTasksAndNonFiniteInputs)
{
    // Zero queue tasks must fold to a zero mean — never 0/0 = NaN.
    RunTelemetry idle;
    idle.sessions = 4;
    idle.executeMs = 10.0;
    idle.poolQueueTasks = 0;
    idle.poolQueueWaitMs = 0.0;
    RunTelemetry rollup;
    foldRunTelemetry(rollup, idle);
    EXPECT_EQ(rollup.poolQueueTasks, 0u);
    EXPECT_DOUBLE_EQ(rollup.poolQueueWaitMeanMs, 0.0);

    // A non-finite part (NaN survives the JSON round-trip as a quoted
    // literal, e.g. from a telemetry file written by a crashed or
    // clock-skewed worker) must not poison the folded sums or mean.
    RunTelemetry poisoned;
    poisoned.sessions = 6;
    poisoned.executeMs = std::numeric_limits<double>::quiet_NaN();
    poisoned.poolQueueTasks = 3;
    poisoned.poolQueueWaitMs =
        std::numeric_limits<double>::quiet_NaN();
    poisoned.poolQueueWaitMeanMs =
        std::numeric_limits<double>::infinity();
    std::ostringstream os;
    writeRunTelemetryJson(poisoned, os);
    const auto parsed = parseRunTelemetry(os.str());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_TRUE(std::isnan(parsed->poolQueueWaitMs));

    foldRunTelemetry(rollup, *parsed);
    EXPECT_EQ(rollup.sessions, 10u);
    EXPECT_EQ(rollup.poolQueueTasks, 3u);
    EXPECT_TRUE(std::isfinite(rollup.executeMs));
    EXPECT_TRUE(std::isfinite(rollup.poolQueueWaitMs));
    EXPECT_TRUE(std::isfinite(rollup.poolQueueWaitMeanMs));
    EXPECT_DOUBLE_EQ(rollup.poolQueueWaitMeanMs, 0.0);
}

TEST(RunTelemetry, LogicalClockZeroesWallDerivedFields)
{
    TelemetryRegistry telemetry;
    TraceEventSink sink(TraceEventSink::Clock::Logical);
    FleetConfig config = miniConfig(1);
    config.telemetry = &telemetry;
    config.traceSink = &sink;
    FleetRunner runner(std::move(config));
    const FleetOutcome outcome = runner.run();
    const RunTelemetry t = makeRunTelemetry(runner.config(), outcome);
    EXPECT_TRUE(t.logicalClock);
    EXPECT_EQ(t.sessions, 12u);
    EXPECT_GT(t.events, 0u);
    EXPECT_DOUBLE_EQ(t.totalMs, 0.0);
    EXPECT_DOUBLE_EQ(t.sessionsPerSec, 0.0);
    EXPECT_DOUBLE_EQ(t.poolBusyMs, 0.0);
    EXPECT_EQ(t.poolMaxQueueDepth, 0u);
    // The scaling section is wall/scheduling-derived: zeroed too.
    EXPECT_EQ(t.cacheLockWaits, 0u);
    EXPECT_DOUBLE_EQ(t.cacheLockWaitMs, 0.0);
    EXPECT_EQ(t.persistLockWaits, 0u);
    EXPECT_DOUBLE_EQ(t.persistLockWaitMs, 0.0);
    EXPECT_TRUE(t.workers.empty());
    // No wall durations may leak into the snapshot either.
    EXPECT_TRUE(t.counters.durations.empty());

    // The whole artifact is byte-reproducible in this mode.
    TelemetryRegistry telemetry2;
    TraceEventSink sink2(TraceEventSink::Clock::Logical);
    FleetConfig config2 = miniConfig(1);
    config2.telemetry = &telemetry2;
    config2.traceSink = &sink2;
    FleetRunner runner2(std::move(config2));
    const FleetOutcome outcome2 = runner2.run();
    EXPECT_EQ(runTelemetryToString(
                  makeRunTelemetry(runner2.config(), outcome2)),
              runTelemetryToString(t));
}

// ------------------------------------------------- canonical merging

TEST(Telemetry, SnapshotMergesShardsCanonically)
{
    // Two registries, same per-shard content written in different
    // thread interleavings: snapshots must be byte-equal and
    // name-sorted.
    const auto build = [](bool reverse) {
        auto registry = std::make_unique<TelemetryRegistry>();
        std::vector<TelemetryShard *> shards;
        for (int i = 0; i < 4; ++i)
            shards.push_back(registry->makeShard());
        std::vector<std::thread> threads;
        for (int i = 0; i < 4; ++i) {
            const int at = reverse ? 3 - i : i;
            threads.emplace_back([shard = shards[at], at] {
                shard->count("zeta", static_cast<uint64_t>(at + 1));
                shard->count("alpha");
                shard->gauge("depth", static_cast<double>(at));
                shard->duration("lat", 1.0 * (at + 1));
            });
        }
        for (auto &t : threads)
            t.join();
        registry->count("alpha", 10);
        return registry;
    };

    const TelemetrySnapshot a = build(false)->snapshot();
    const TelemetrySnapshot b = build(true)->snapshot();

    ASSERT_EQ(a.counters.size(), 2u);
    EXPECT_EQ(a.counters[0].first, "alpha");  // name-sorted
    EXPECT_EQ(a.counters[0].second, 4u + 10u);
    EXPECT_EQ(a.counters[1].first, "zeta");
    EXPECT_EQ(a.counters[1].second, 1u + 2u + 3u + 4u);
    EXPECT_DOUBLE_EQ(a.gaugeValue("depth"), 3.0);  // max-merge
    ASSERT_EQ(a.durations.size(), 1u);
    EXPECT_EQ(a.durations[0].second.count, 4u);
    EXPECT_DOUBLE_EQ(a.durations[0].second.sumMs, 10.0);
    EXPECT_DOUBLE_EQ(a.durations[0].second.minMs, 1.0);
    EXPECT_DOUBLE_EQ(a.durations[0].second.maxMs, 4.0);

    EXPECT_EQ(a.counters, b.counters);
    EXPECT_EQ(a.gauges, b.gauges);
    ASSERT_EQ(a.durations.size(), b.durations.size());
    EXPECT_EQ(a.durations[0].second.buckets, b.durations[0].second.buckets);
}

TEST(Telemetry, DurationStatsBucketsByLog2Microseconds)
{
    DurationStats d;
    d.record(0.001);  // 1 us -> bucket 0
    d.record(0.003);  // 3 us -> bucket 1
    d.record(1.0);    // 1000 us -> bucket 9
    EXPECT_EQ(d.count, 3u);
    EXPECT_EQ(d.buckets[0], 1u);
    EXPECT_EQ(d.buckets[1], 1u);
    EXPECT_EQ(d.buckets[9], 1u);
    DurationStats e;
    e.record(1.0);
    e.merge(d);
    EXPECT_EQ(e.count, 4u);
    EXPECT_EQ(e.buckets[9], 2u);
    EXPECT_DOUBLE_EQ(e.minMs, 0.001);
    EXPECT_DOUBLE_EQ(e.maxMs, 1.0);
}

} // namespace
} // namespace pes
