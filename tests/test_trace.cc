/**
 * @file
 * Tests for the trace substrate: application registry, DOM synthesis,
 * trace serialization, the synthetic user model, and the oracle
 * feasibility repair pass.
 */

#include <gtest/gtest.h>

#include <set>

#include "trace/app_profile.hh"
#include "trace/dom_builder.hh"
#include "trace/generator.hh"
#include "trace/trace.hh"
#include "trace/user_model.hh"
#include "trace/workload_params.hh"
#include "util/stats.hh"
#include "web/dom_analyzer.hh"

namespace pes {
namespace {

// ------------------------------------------------------------ Registry

TEST(AppRegistry, TwelveSeenSixUnseen)
{
    // Paper Sec. 3 / 6.1.
    EXPECT_EQ(appRegistry().size(), 18u);
    EXPECT_EQ(seenApps().size(), 12u);
    EXPECT_EQ(unseenApps().size(), 6u);
}

TEST(AppRegistry, PaperAppNamesPresent)
{
    for (const char *name :
         {"163", "msn", "slashdot", "youtube", "google", "amazon", "ebay",
          "sina", "espn", "bbc", "cnn", "twitter"}) {
        EXPECT_TRUE(appByName(name).seen) << name;
    }
    for (const char *name : {"yahoo", "nytimes", "stackoverflow",
                             "taobao", "tmall", "jd"}) {
        EXPECT_FALSE(appByName(name).seen) << name;
    }
}

TEST(AppRegistry, UniqueNamesAndSeeds)
{
    std::set<std::string> names;
    std::set<uint64_t> seeds;
    for (const AppProfile &p : appRegistry()) {
        names.insert(p.name);
        seeds.insert(p.domSeed);
    }
    EXPECT_EQ(names.size(), 18u);
    EXPECT_EQ(seeds.size(), 18u);
}

TEST(AppRegistry, HarderAppsHaveHigherTemperature)
{
    // Sec. 6.2: google (big clickable area) is hardest, slashdot easiest.
    const double google = appByName("google").behaviorTemp;
    const double slashdot = appByName("slashdot").behaviorTemp;
    for (const AppProfile &p : appRegistry()) {
        EXPECT_LE(p.behaviorTemp, google + 1e-12) << p.name;
        EXPECT_GE(p.behaviorTemp, slashdot - 1e-12) << p.name;
    }
}

// ------------------------------------------------------------ Builder

class BuilderTest : public ::testing::Test
{
  protected:
    const AppProfile &profile = appByName("cnn");
    WebApp app = AppDomBuilder(profile).build();
};

TEST_F(BuilderTest, DeterministicFromSeed)
{
    const WebApp again = AppDomBuilder(profile).build();
    ASSERT_EQ(app.numPages(), again.numPages());
    for (int p = 0; p < app.numPages(); ++p) {
        ASSERT_EQ(app.dom(p).size(), again.dom(p).size());
        for (size_t n = 0; n < app.dom(p).size(); ++n) {
            const DomNode &a = app.dom(p).node(static_cast<NodeId>(n));
            const DomNode &b = again.dom(p).node(static_cast<NodeId>(n));
            EXPECT_EQ(a.role, b.role);
            EXPECT_DOUBLE_EQ(a.rect.y, b.rect.y);
            EXPECT_EQ(a.handlers.size(), b.handlers.size());
        }
    }
}

TEST_F(BuilderTest, EveryPageHasDocumentHandlers)
{
    for (int p = 0; p < app.numPages(); ++p) {
        const DomNode &root = app.dom(p).node(0);
        EXPECT_NE(root.handlerFor(DomEventType::Load), nullptr);
        const bool has_move =
            root.handlerFor(DomEventType::Scroll) ||
            root.handlerFor(DomEventType::TouchMove);
        EXPECT_TRUE(has_move);
    }
}

TEST_F(BuilderTest, MenusStartHiddenAndContainItems)
{
    const DomTree &dom = app.dom(0);
    int hidden_menus = 0;
    for (size_t n = 0; n < dom.size(); ++n) {
        const DomNode &node = dom.node(static_cast<NodeId>(n));
        if (node.role == NodeRole::Container && !node.displayed) {
            ++hidden_menus;
            EXPECT_FALSE(node.children.empty());
        }
    }
    EXPECT_EQ(hidden_menus, profile.menuCount);
}

TEST_F(BuilderTest, TapManifestationIsSiteWide)
{
    // All tap handlers of an app share one DOM type (site convention).
    std::set<DomEventType> tap_types;
    for (int p = 0; p < app.numPages(); ++p) {
        const DomTree &dom = app.dom(p);
        for (size_t n = 0; n < dom.size(); ++n) {
            for (const HandlerSpec &h :
                 dom.node(static_cast<NodeId>(n)).handlers) {
                if (interactionOf(h.type) == Interaction::Tap &&
                    h.type != DomEventType::Submit) {
                    tap_types.insert(h.type);
                }
            }
        }
    }
    EXPECT_EQ(tap_types.size(), 1u);
}

TEST_F(BuilderTest, PageHeightMatchesProfile)
{
    const DomTree &dom = app.dom(0);
    EXPECT_NEAR(dom.pageHeight(), profile.pageHeightFactor * 640.0,
                640.0 * 0.2);
}

TEST_F(BuilderTest, FormOnlyInFormApps)
{
    auto has_submit = [](const WebApp &a) {
        for (int p = 0; p < a.numPages(); ++p) {
            const DomTree &dom = a.dom(p);
            for (size_t n = 0; n < dom.size(); ++n) {
                if (dom.node(static_cast<NodeId>(n)).role ==
                    NodeRole::SubmitButton) {
                    return true;
                }
            }
        }
        return false;
    };
    EXPECT_FALSE(has_submit(app));  // cnn has no form
    const WebApp amazon = AppDomBuilder(appByName("amazon")).build();
    EXPECT_TRUE(has_submit(amazon));
}

TEST_F(BuilderTest, SharedHandlersCarryClassIds)
{
    const DomTree &dom = app.dom(0);
    int with_class = 0;
    for (size_t n = 0; n < dom.size(); ++n) {
        for (const HandlerSpec &h :
             dom.node(static_cast<NodeId>(n)).handlers) {
            if (h.handlerClassId >= 0)
                ++with_class;
        }
    }
    EXPECT_GT(with_class, 3);
}

// --------------------------------------------------------- Serialization

TEST(TraceFormat, SerializeRoundTrip)
{
    AcmpPlatform platform = AcmpPlatform::exynos5410();
    TraceGenerator gen(platform);
    const InteractionTrace trace = gen.generate(appByName("ebay"), 4242);
    ASSERT_FALSE(trace.events.empty());

    const auto restored = InteractionTrace::deserialize(trace.serialize());
    ASSERT_TRUE(restored.has_value());
    ASSERT_EQ(restored->events.size(), trace.events.size());
    EXPECT_EQ(restored->appName, trace.appName);
    EXPECT_EQ(restored->userSeed, trace.userSeed);
    for (size_t i = 0; i < trace.events.size(); ++i) {
        const TraceEvent &a = trace.events[i];
        const TraceEvent &b = restored->events[i];
        EXPECT_DOUBLE_EQ(a.arrival, b.arrival);
        EXPECT_EQ(a.type, b.type);
        EXPECT_EQ(a.node, b.node);
        EXPECT_DOUBLE_EQ(a.callbackWork.ndep, b.callbackWork.ndep);
        EXPECT_DOUBLE_EQ(a.renderWork.total().tmemMs,
                         b.renderWork.total().tmemMs);
        EXPECT_EQ(a.classKey, b.classKey);
        EXPECT_EQ(a.issuesNetwork, b.issuesNetwork);
    }
}

TEST(TraceFormat, FileRoundTrip)
{
    AcmpPlatform platform = AcmpPlatform::exynos5410();
    TraceGenerator gen(platform);
    const InteractionTrace trace = gen.generate(appByName("bbc"), 7);
    const std::string path = "/tmp/pes_trace_test.txt";
    ASSERT_TRUE(trace.saveToFile(path));
    const auto restored = InteractionTrace::loadFromFile(path);
    ASSERT_TRUE(restored.has_value());
    EXPECT_EQ(restored->serialize(), trace.serialize());
    std::remove(path.c_str());
}

TEST(TraceFormat, DeserializeRejectsGarbage)
{
    EXPECT_FALSE(InteractionTrace::deserialize("nope").has_value());
    EXPECT_FALSE(
        InteractionTrace::deserialize("pes-trace-v1\napp x\nuser 1\n"
                                      "events 5\n1 2 3")
            .has_value());
}

// --------------------------------------------------------- User model

class UserModelTest : public ::testing::Test
{
  protected:
    AcmpPlatform platform = AcmpPlatform::exynos5410();
    TraceGenerator gen{platform};
};

TEST_F(UserModelTest, DeterministicPerSeed)
{
    const InteractionTrace a = gen.generate(appByName("espn"), 11);
    const InteractionTrace b = gen.generate(appByName("espn"), 11);
    EXPECT_EQ(a.serialize(), b.serialize());
}

TEST_F(UserModelTest, DifferentUsersDiffer)
{
    const InteractionTrace a = gen.generate(appByName("espn"), 11);
    const InteractionTrace b = gen.generate(appByName("espn"), 12);
    EXPECT_NE(a.serialize(), b.serialize());
}

TEST_F(UserModelTest, SessionStartsWithLandingLoad)
{
    const InteractionTrace trace = gen.generate(appByName("msn"), 3);
    ASSERT_FALSE(trace.events.empty());
    EXPECT_EQ(trace.events.front().type, DomEventType::Load);
    EXPECT_DOUBLE_EQ(trace.events.front().arrival, 0.0);
}

TEST_F(UserModelTest, SessionStatisticsInPaperRegime)
{
    // Paper Sec. 5.5: ~110 s sessions, ~25 events on average, <= 70.
    RunningStats events, duration;
    for (const char *name : {"cnn", "bbc", "google", "twitter"}) {
        for (uint64_t seed = 50; seed < 56; ++seed) {
            const InteractionTrace t = gen.generate(appByName(name), seed);
            events.add(static_cast<double>(t.size()));
            duration.add(t.duration());
            EXPECT_LE(t.size(),
                      static_cast<size_t>(UserModel::kMaxEvents));
            EXPECT_GE(t.size(), 8u);
        }
    }
    EXPECT_GT(events.mean(), 15.0);
    EXPECT_LT(events.mean(), 60.0);
    EXPECT_GT(duration.mean(), 60000.0);
    EXPECT_LT(duration.mean(), 160000.0);
}

TEST_F(UserModelTest, ArrivalsStrictlyIncrease)
{
    const InteractionTrace trace = gen.generate(appByName("amazon"), 9);
    for (size_t i = 1; i < trace.events.size(); ++i)
        EXPECT_GT(trace.events[i].arrival, trace.events[i - 1].arrival);
}

TEST_F(UserModelTest, EventsTargetRegisteredHandlers)
{
    const InteractionTrace trace = gen.generate(appByName("cnn"), 21);
    const WebApp &app = gen.appFor(appByName("cnn"));
    WebAppSession session(app);
    for (const TraceEvent &e : trace.events) {
        ASSERT_EQ(session.currentPage(), e.pageId);
        const HandlerSpec *h =
            session.dom().node(e.node).handlerFor(e.type);
        ASSERT_NE(h, nullptr);
        session.commitEvent(e.node, e.type);
    }
}

TEST_F(UserModelTest, LoadLatencyCapHolds)
{
    const DvfsLatencyModel model(platform);
    for (const char *name : {"sina", "cnn", "taobao"}) {
        const InteractionTrace trace = gen.generate(appByName(name), 33);
        for (const TraceEvent &e : trace.events) {
            if (e.type != DomEventType::Load)
                continue;
            EXPECT_LE(model.latency(e.totalWork(), platform.maxConfig()),
                      kMaxLoadLatencyAtMaxMs + 1.0);
        }
    }
}

TEST_F(UserModelTest, WorkloadsScaleWithInteraction)
{
    // Loads carry orders of magnitude more work than moves.
    const InteractionTrace trace = gen.generate(appByName("cnn"), 44);
    RunningStats load_work, move_work;
    for (const TraceEvent &e : trace.events) {
        if (interactionOf(e.type) == Interaction::Load)
            load_work.add(e.totalWork().ndep);
        if (interactionOf(e.type) == Interaction::Move)
            move_work.add(e.totalWork().ndep);
    }
    ASSERT_GT(load_work.count(), 0u);
    ASSERT_GT(move_work.count(), 0u);
    EXPECT_GT(load_work.mean(), 30.0 * move_work.mean());
}

TEST_F(UserModelTest, TrainingAndEvalSeedsDisjoint)
{
    const auto train = gen.trainingSet(appByName("bbc"), 2);
    const auto eval = gen.evaluationSet(appByName("bbc"), 2);
    ASSERT_EQ(train.size(), 2u);
    ASSERT_EQ(eval.size(), 2u);
    for (const auto &t : train)
        for (const auto &e : eval)
            EXPECT_NE(t.userSeed, e.userSeed);
}

// --------------------------------------------------- Feasibility repair

TEST(FeasibilityRepair, EnforcesOracleChainSlack)
{
    AcmpPlatform platform = AcmpPlatform::exynos5410();
    const DvfsLatencyModel model(platform);
    const VsyncClock vsync;

    // A deliberately infeasible burst: three heavy events at t=0,1,2 ms.
    InteractionTrace trace;
    trace.appName = "synthetic";
    for (int i = 0; i < 3; ++i) {
        TraceEvent e;
        e.arrival = static_cast<double>(i);
        e.type = DomEventType::Click;
        e.callbackWork = {10.0, 400.0};  // ~232 ms at big max
        trace.events.push_back(e);
    }
    const int adjusted = repairOracleFeasibility(trace, model, vsync);
    EXPECT_GT(adjusted, 0);

    // Post-repair: a back-to-back max-config chain meets every deadline
    // with at least a VSync period of slack.
    TimeMs finish = 0.0;
    for (const TraceEvent &e : trace.events) {
        finish += model.latency(e.totalWork(), platform.maxConfig());
        EXPECT_LE(finish,
                  e.arrival + e.qosTarget() - vsync.periodMs() + 1e-6);
    }
    // Arrivals stay ordered.
    for (size_t i = 1; i < trace.events.size(); ++i)
        EXPECT_GT(trace.events[i].arrival, trace.events[i - 1].arrival);
}

TEST(FeasibilityRepair, NoOpOnFeasibleTraces)
{
    AcmpPlatform platform = AcmpPlatform::exynos5410();
    const DvfsLatencyModel model(platform);
    InteractionTrace trace;
    TraceEvent e;
    e.arrival = 0.0;
    e.type = DomEventType::Load;
    e.callbackWork = {100.0, 1000.0};  // ~0.66 s at max, 3 s target
    trace.events.push_back(e);
    EXPECT_EQ(repairOracleFeasibility(trace, model, VsyncClock()), 0);
    EXPECT_DOUBLE_EQ(trace.events[0].arrival, 0.0);
}

TEST(FeasibilityRepair, GeneratedTracesAreOracleFeasible)
{
    AcmpPlatform platform = AcmpPlatform::exynos5410();
    TraceGenerator gen(platform);
    const DvfsLatencyModel model(platform);
    const VsyncClock vsync;
    for (const char *name : {"cnn", "twitter", "google"}) {
        const InteractionTrace trace = gen.generate(appByName(name), 60);
        TimeMs finish = 0.0;
        for (const TraceEvent &e : trace.events) {
            finish += model.latency(e.totalWork(), platform.maxConfig());
            EXPECT_LE(finish, e.arrival + e.qosTarget() + 1e-6)
                << name;
        }
    }
}

// --------------------------------------------------------- Class keys

TEST(ClassKeys, NavigationsKeyOnDestination)
{
    HandlerSpec nav;
    nav.type = DomEventType::Load;
    nav.effect = {EffectKind::Navigate, kInvalidNode, 2, 0.0};
    // Two different links to the same destination share a class.
    EXPECT_EQ(eventClassKeyFor("cnn", 0, 10, nav),
              eventClassKeyFor("cnn", 1, 99, nav));
    HandlerSpec other_dest = nav;
    other_dest.effect.pageId = 3;
    EXPECT_NE(eventClassKeyFor("cnn", 0, 10, nav),
              eventClassKeyFor("cnn", 0, 10, other_dest));
}

TEST(ClassKeys, SharedCallbacksShareClasses)
{
    HandlerSpec shared;
    shared.type = DomEventType::Click;
    shared.handlerClassId = 1;
    EXPECT_EQ(eventClassKeyFor("cnn", 0, 10, shared),
              eventClassKeyFor("cnn", 0, 77, shared));
    // ...but not across pages or apps.
    EXPECT_NE(eventClassKeyFor("cnn", 0, 10, shared),
              eventClassKeyFor("cnn", 1, 10, shared));
    EXPECT_NE(eventClassKeyFor("cnn", 0, 10, shared),
              eventClassKeyFor("bbc", 0, 10, shared));
}

TEST(ClassKeys, UniqueHandlersKeyOnNode)
{
    HandlerSpec unique;
    unique.type = DomEventType::Click;
    unique.handlerClassId = -1;
    EXPECT_NE(eventClassKeyFor("cnn", 0, 10, unique),
              eventClassKeyFor("cnn", 0, 11, unique));
}

} // namespace
} // namespace pes
