/**
 * @file
 * Unit tests for the util substrate: deterministic RNG, statistics,
 * tables, and string helpers.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <filesystem>
#include <set>
#include <sstream>
#include <thread>

#include "util/binary_io.hh"
#include "util/rng.hh"
#include "util/stats.hh"
#include "util/strings.hh"
#include "util/table.hh"
#include "util/types.hh"

namespace fs = std::filesystem;

namespace pes {
namespace {

// ---------------------------------------------------------------- Rng

TEST(Rng, SameSeedSameSequence)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int differing = 0;
    for (int i = 0; i < 32; ++i)
        differing += a.next() != b.next() ? 1 : 0;
    EXPECT_GT(differing, 28);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanIsHalf)
{
    Rng rng(7);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng rng(3);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(5.0, 9.0);
        EXPECT_GE(u, 5.0);
        EXPECT_LT(u, 9.0);
    }
}

TEST(Rng, UniformIntInclusiveBounds)
{
    Rng rng(11);
    std::set<int> seen;
    for (int i = 0; i < 1000; ++i) {
        const int v = rng.uniformInt(2, 5);
        EXPECT_GE(v, 2);
        EXPECT_LE(v, 5);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 4u);  // all four values appear
}

TEST(Rng, NormalMoments)
{
    Rng rng(19);
    RunningStats stats;
    for (int i = 0; i < 50000; ++i)
        stats.add(rng.normal(10.0, 2.0));
    EXPECT_NEAR(stats.mean(), 10.0, 0.05);
    EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(Rng, LognormalMedianParameterization)
{
    Rng rng(23);
    SampleSet samples;
    for (int i = 0; i < 30000; ++i)
        samples.add(rng.lognormal(100.0, 0.5));
    EXPECT_NEAR(samples.median(), 100.0, 3.0);
}

TEST(Rng, LognormalZeroSigmaIsExact)
{
    Rng rng(29);
    EXPECT_DOUBLE_EQ(rng.lognormal(42.0, 0.0), 42.0);
}

TEST(Rng, ExponentialMean)
{
    Rng rng(31);
    RunningStats stats;
    for (int i = 0; i < 50000; ++i)
        stats.add(rng.exponential(7.0));
    EXPECT_NEAR(stats.mean(), 7.0, 0.15);
}

TEST(Rng, BernoulliFrequency)
{
    Rng rng(37);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        hits += rng.bernoulli(0.3) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.015);
}

TEST(Rng, CategoricalFollowsWeights)
{
    Rng rng(41);
    std::vector<double> weights{1.0, 3.0, 0.0, 6.0};
    std::vector<int> counts(4, 0);
    const int n = 30000;
    for (int i = 0; i < n; ++i)
        ++counts[static_cast<size_t>(rng.categorical(weights))];
    EXPECT_EQ(counts[2], 0);  // zero weight never drawn
    EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.02);
    EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.6, 0.02);
}

TEST(Rng, CategoricalAllZeroWeightsIsUniform)
{
    Rng rng(43);
    std::vector<double> weights{0.0, 0.0, 0.0};
    std::vector<int> counts(3, 0);
    for (int i = 0; i < 9000; ++i)
        ++counts[static_cast<size_t>(rng.categorical(weights))];
    for (int c : counts)
        EXPECT_GT(c, 2500);
}

TEST(Rng, ForkIsIndependentAndDeterministic)
{
    Rng a(5);
    Rng b(5);
    Rng fa = a.fork(99);
    Rng fb = b.fork(99);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(fa.next(), fb.next());
}

TEST(Rng, HashStringStable)
{
    EXPECT_EQ(hashString("cnn"), hashString("cnn"));
    EXPECT_NE(hashString("cnn"), hashString("bbc"));
}

TEST(Rng, HashCombineOrderSensitive)
{
    EXPECT_NE(hashCombine(1, 2), hashCombine(2, 1));
}

// ---------------------------------------------------------------- Stats

TEST(RunningStats, EmptyIsZero)
{
    RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownValues)
{
    RunningStats s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.variance(), 4.571428571, 1e-9);
    EXPECT_EQ(s.min(), 2.0);
    EXPECT_EQ(s.max(), 9.0);
    EXPECT_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesPooled)
{
    RunningStats a, b, pooled;
    Rng rng(13);
    for (int i = 0; i < 100; ++i) {
        const double x = rng.uniform(0.0, 10.0);
        (i < 40 ? a : b).add(x);
        pooled.add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), pooled.count());
    EXPECT_NEAR(a.mean(), pooled.mean(), 1e-12);
    EXPECT_NEAR(a.variance(), pooled.variance(), 1e-9);
}

TEST(SampleSet, PercentilesOnKnownData)
{
    SampleSet s;
    for (int i = 1; i <= 100; ++i)
        s.add(static_cast<double>(i));
    EXPECT_NEAR(s.percentile(0.0), 1.0, 1e-12);
    EXPECT_NEAR(s.percentile(100.0), 100.0, 1e-12);
    EXPECT_NEAR(s.median(), 50.5, 1e-12);
    EXPECT_NEAR(s.percentile(90.0), 90.1, 1e-9);
}

TEST(SampleSet, PercentileAfterMoreSamples)
{
    SampleSet s;
    s.add(10.0);
    EXPECT_EQ(s.median(), 10.0);
    s.add(20.0);
    EXPECT_NEAR(s.median(), 15.0, 1e-12);
}

TEST(Histogram, BinningAndClamping)
{
    Histogram h(0.0, 10.0, 5);
    h.add(0.5);    // bin 0
    h.add(9.99);   // bin 4
    h.add(-3.0);   // clamps to bin 0
    h.add(42.0);   // clamps to bin 4
    h.add(5.0);    // bin 2
    EXPECT_EQ(h.binCount(0), 2u);
    EXPECT_EQ(h.binCount(2), 1u);
    EXPECT_EQ(h.binCount(4), 2u);
    EXPECT_EQ(h.total(), 5u);
    EXPECT_DOUBLE_EQ(h.binLo(2), 4.0);
}

TEST(Geomean, KnownValue)
{
    EXPECT_NEAR(geomean({1.0, 8.0}), std::sqrt(8.0), 1e-12);
    EXPECT_EQ(geomean({}), 0.0);
}

// ---------------------------------------------------------------- Table

TEST(Table, AlignedOutputContainsCells)
{
    Table t({"app", "energy"});
    t.beginRow().cell(std::string("cnn")).cell(12.345, 2);
    t.beginRow().cell(std::string("bbc")).cell(7L);
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("cnn"), std::string::npos);
    EXPECT_NE(out.find("12.35"), std::string::npos);
    EXPECT_NE(out.find("7"), std::string::npos);
    EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, CsvEscapesSpecialCharacters)
{
    Table t({"name", "note"});
    t.addRow({"a,b", "say \"hi\""});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_NE(os.str().find("\"a,b\""), std::string::npos);
    EXPECT_NE(os.str().find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, FormatHelpers)
{
    EXPECT_EQ(formatDouble(3.14159, 3), "3.142");
    EXPECT_EQ(formatPercent(0.256), "25.6%");
}

// ---------------------------------------------------------------- Strings

TEST(Strings, SplitKeepsEmptyFields)
{
    const auto parts = split("a,,b,", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[1], "");
    EXPECT_EQ(parts[2], "b");
    EXPECT_EQ(parts[3], "");
}

TEST(Strings, TrimWhitespace)
{
    EXPECT_EQ(trim("  hello \t\n"), "hello");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim("   "), "");
}

TEST(Strings, JoinRoundTrip)
{
    const std::vector<std::string> parts{"x", "y", "z"};
    EXPECT_EQ(join(parts, "-"), "x-y-z");
    EXPECT_EQ(split(join(parts, ","), ','), parts);
}

TEST(Strings, StartsWith)
{
    EXPECT_TRUE(startsWith("pes-trace-v1", "pes-"));
    EXPECT_FALSE(startsWith("pes", "pes-trace"));
}

// ---------------------------------------------------------------- Types

TEST(Types, LatencyFormula)
{
    // 90 Mcycles at 1800 MHz = 50 ms, plus 10 ms memory time.
    EXPECT_NEAR(computeLatencyMs(10.0, 90.0, 1800.0), 60.0, 1e-12);
}

TEST(Types, EnergyFormula)
{
    // 2000 mW for 500 ms = 1000 mJ.
    EXPECT_NEAR(energyOf(2000.0, 500.0), 1000.0, 1e-12);
}

// ------------------------------------------------------------ file IO

TEST(BinaryIo, AtomicWritersNeverClobberEachOther)
{
    // Regression: writeFileAtomic used one fixed "<path>.tmp" temp
    // name, so two concurrent writers truncated each other's bytes
    // mid-write and could rename a torn file into place. The temp is
    // now unique per writer; every interleaving leaves one complete
    // payload and no temp litter.
    const fs::path dir =
        fs::temp_directory_path() / "pes_util_test_atomic";
    fs::remove_all(dir);
    fs::create_directories(dir);
    const std::string target = (dir / "shared.json").string();

    constexpr int kWriters = 8;
    constexpr int kRounds = 25;
    std::vector<std::string> payloads;
    for (int w = 0; w < kWriters; ++w)
        payloads.push_back(std::string(1 << 14, 'a' + w));

    std::vector<std::thread> writers;
    std::atomic<int> failures{0};
    for (int w = 0; w < kWriters; ++w) {
        writers.emplace_back([&, w] {
            for (int i = 0; i < kRounds; ++i) {
                std::string error;
                if (!writeFileAtomic(target, payloads[w], &error))
                    ++failures;
            }
        });
    }
    for (std::thread &t : writers)
        t.join();
    EXPECT_EQ(failures.load(), 0);

    // The survivor is some writer's COMPLETE payload...
    std::string bytes, error;
    ASSERT_TRUE(readFileBytes(target, bytes, &error)) << error;
    EXPECT_NE(std::find(payloads.begin(), payloads.end(), bytes),
              payloads.end())
        << "torn file: " << bytes.size() << " bytes";

    // ...and no ".tmp." litter survives any interleaving.
    for (const auto &entry : fs::directory_iterator(dir)) {
        EXPECT_EQ(entry.path().filename().string(), "shared.json");
    }
    fs::remove_all(dir);
}

} // namespace
} // namespace pes
