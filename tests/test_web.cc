/**
 * @file
 * Unit tests for the web-runtime substrate: event taxonomy, DOM tree,
 * semantic tree, DOM analyzer (LNES), rendering pipeline, VSync clock,
 * event loop, and WebApp sessions.
 */

#include <gtest/gtest.h>

#include "web/dom.hh"
#include "web/dom_analyzer.hh"
#include "web/event_loop.hh"
#include "web/event_types.hh"
#include "web/render_pipeline.hh"
#include "web/semantic_tree.hh"
#include "web/vsync.hh"
#include "web/web_app.hh"

namespace pes {
namespace {

// ------------------------------------------------------------ Events

TEST(EventTypes, QosTargetsPerPaper)
{
    // Sec. 4.2: load 3 s, tap 300 ms, move 33 ms.
    EXPECT_DOUBLE_EQ(qosTargetMs(DomEventType::Load), 3000.0);
    EXPECT_DOUBLE_EQ(qosTargetMs(DomEventType::Click), 300.0);
    EXPECT_DOUBLE_EQ(qosTargetMs(DomEventType::TouchStart), 300.0);
    EXPECT_DOUBLE_EQ(qosTargetMs(DomEventType::Submit), 300.0);
    EXPECT_DOUBLE_EQ(qosTargetMs(DomEventType::Scroll), 33.0);
    EXPECT_DOUBLE_EQ(qosTargetMs(DomEventType::TouchMove), 33.0);
}

TEST(EventTypes, ManifestationsMapToInteractions)
{
    EXPECT_EQ(interactionOf(DomEventType::Click), Interaction::Tap);
    EXPECT_EQ(interactionOf(DomEventType::TouchStart), Interaction::Tap);
    EXPECT_EQ(interactionOf(DomEventType::Scroll), Interaction::Move);
    EXPECT_EQ(interactionOf(DomEventType::TouchMove), Interaction::Move);
    EXPECT_EQ(interactionOf(DomEventType::Load), Interaction::Load);
}

TEST(EventTypes, NameRoundTrip)
{
    for (int i = 0; i < kNumDomEventTypes; ++i) {
        const auto type = static_cast<DomEventType>(i);
        DomEventType parsed;
        ASSERT_TRUE(parseDomEventType(domEventTypeName(type), parsed));
        EXPECT_EQ(parsed, type);
    }
    DomEventType out;
    EXPECT_FALSE(parseDomEventType("mousewheel", out));
}

// ------------------------------------------------------------ Geometry

TEST(Geometry, IntersectionArea)
{
    const Rect a{0, 0, 10, 10};
    const Rect b{5, 5, 10, 10};
    EXPECT_DOUBLE_EQ(a.intersectionArea(b), 25.0);
    EXPECT_TRUE(a.intersects(b));
    const Rect c{20, 20, 5, 5};
    EXPECT_DOUBLE_EQ(a.intersectionArea(c), 0.0);
    EXPECT_FALSE(a.intersects(c));
}

TEST(Geometry, ViewportRectTracksScroll)
{
    Viewport v;
    v.scrollY = 500.0;
    EXPECT_DOUBLE_EQ(v.rect().y, 500.0);
    EXPECT_DOUBLE_EQ(v.rect().h, v.height);
}

// ------------------------------------------------------------ DOM

class DomFixture : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dom.node(dom.root()).rect = {0, 0, 360, 2000};
        visible = dom.createNode(dom.root(), NodeRole::Button,
                                 {10, 100, 100, 40});
        below_fold = dom.createNode(dom.root(), NodeRole::Button,
                                    {10, 1500, 100, 40});
        hidden_menu = dom.createNode(dom.root(), NodeRole::Container,
                                     {0, 56, 360, 200});
        dom.setDisplayed(hidden_menu, false);
        menu_item = dom.createNode(hidden_menu, NodeRole::MenuItem,
                                   {0, 60, 360, 48});
    }

    DomTree dom;
    NodeId visible = kInvalidNode;
    NodeId below_fold = kInvalidNode;
    NodeId hidden_menu = kInvalidNode;
    NodeId menu_item = kInvalidNode;
};

TEST_F(DomFixture, VisibilityRequiresDisplayAndViewport)
{
    const Viewport view;  // scroll 0, 360x640
    EXPECT_TRUE(dom.isVisible(visible, view));
    EXPECT_FALSE(dom.isVisible(below_fold, view));   // outside viewport
    EXPECT_FALSE(dom.isVisible(menu_item, view));    // ancestor hidden
}

TEST_F(DomFixture, AncestorDisplayGatesDescendants)
{
    EXPECT_FALSE(dom.isDisplayed(menu_item));
    dom.setDisplayed(hidden_menu, true);
    EXPECT_TRUE(dom.isDisplayed(menu_item));
}

TEST_F(DomFixture, ScrollBringsNodesIntoView)
{
    Viewport view;
    view.scrollY = 1400.0;
    EXPECT_TRUE(dom.isVisible(below_fold, view));
    EXPECT_FALSE(dom.isVisible(visible, view));
}

TEST_F(DomFixture, VisibleNodesEnumerates)
{
    const Viewport view;
    const auto nodes = dom.visibleNodes(view);
    EXPECT_NE(std::find(nodes.begin(), nodes.end(), visible),
              nodes.end());
    EXPECT_EQ(std::find(nodes.begin(), nodes.end(), menu_item),
              nodes.end());
}

TEST_F(DomFixture, PageHeightIgnoresHiddenNodes)
{
    DomTree t;
    t.node(t.root()).rect = {0, 0, 360, 100};
    const NodeId tall =
        t.createNode(t.root(), NodeRole::Container, {0, 0, 360, 5000});
    EXPECT_DOUBLE_EQ(t.pageHeight(), 5000.0);
    t.setDisplayed(tall, false);
    EXPECT_DOUBLE_EQ(t.pageHeight(), 100.0);
}

TEST_F(DomFixture, HandlerLookup)
{
    HandlerSpec spec;
    spec.type = DomEventType::Click;
    dom.addHandler(visible, spec);
    EXPECT_NE(dom.node(visible).handlerFor(DomEventType::Click), nullptr);
    EXPECT_EQ(dom.node(visible).handlerFor(DomEventType::Scroll), nullptr);
    EXPECT_FALSE(dom.node(below_fold).hasListeners());
}

TEST(DomNode, ClickableRoles)
{
    DomNode n;
    for (NodeRole role : {NodeRole::Link, NodeRole::Button,
                          NodeRole::MenuToggle, NodeRole::MenuItem,
                          NodeRole::FormField, NodeRole::SubmitButton}) {
        n.role = role;
        EXPECT_TRUE(n.isClickable()) << nodeRoleName(role);
    }
    for (NodeRole role : {NodeRole::Container, NodeRole::Text,
                          NodeRole::Image}) {
        n.role = role;
        EXPECT_FALSE(n.isClickable()) << nodeRoleName(role);
    }
}

// ------------------------------------------------------ Semantic tree

TEST(SemanticTree, MemoizesToggleWithoutCallbackEvaluation)
{
    // The Fig. 7 scenario: a button whose callback toggles a menu. The
    // semantic tree must expose the post-event DOM state statically.
    DomTree dom;
    dom.node(dom.root()).rect = {0, 0, 360, 640};
    const NodeId menu =
        dom.createNode(dom.root(), NodeRole::Container, {0, 56, 360, 200});
    dom.setDisplayed(menu, false);
    const NodeId button = dom.createNode(dom.root(), NodeRole::MenuToggle,
                                         {8, 8, 40, 40});
    HandlerSpec spec;
    spec.type = DomEventType::Click;
    spec.effect = {EffectKind::ToggleDisplay, menu, -1, 0.0};
    dom.addHandler(button, spec);

    const SemanticTree semantics = SemanticTree::fromDom(dom);
    const auto effect = semantics.effectOf(button, DomEventType::Click);
    ASSERT_TRUE(effect.has_value());
    EXPECT_EQ(effect->kind, EffectKind::ToggleDisplay);
    EXPECT_EQ(effect->target, menu);

    // Static rollout: the overlay knows the menu is open after the click.
    DomOverlay overlay;
    EXPECT_FALSE(overlay.displayedOf(dom, menu));
    overlay.apply(dom, *effect);
    EXPECT_TRUE(overlay.displayedOf(dom, menu));
    // And closed again after a second click (toggle semantics).
    overlay.apply(dom, *effect);
    EXPECT_FALSE(overlay.displayedOf(dom, menu));
}

TEST(SemanticTree, UnknownNodeHasNoEntry)
{
    DomTree dom;
    const SemanticTree semantics = SemanticTree::fromDom(dom);
    EXPECT_FALSE(semantics.effectOf(5, DomEventType::Click).has_value());
}

TEST(SemanticTree, NavigationResetsOverlay)
{
    DomTree dom;
    DomOverlay overlay;
    overlay.scrollY = 300.0;
    overlay.displayOverride[3] = true;
    HandlerEffect nav{EffectKind::Navigate, kInvalidNode, 2, 0.0};
    EXPECT_FALSE(overlay.apply(dom, nav));  // leaves the page
    EXPECT_EQ(overlay.pageId, 2);
    EXPECT_DOUBLE_EQ(overlay.scrollY, 0.0);
    EXPECT_TRUE(overlay.displayOverride.empty());
}

TEST(SemanticTree, ScrollClampsToPage)
{
    DomTree dom;
    dom.node(dom.root()).rect = {0, 0, 360, 1000};
    DomOverlay overlay;
    HandlerEffect scroll{EffectKind::ScrollBy, kInvalidNode, -1, 5000.0};
    overlay.apply(dom, scroll);
    EXPECT_LE(overlay.scrollY, 1000.0);
    HandlerEffect up{EffectKind::ScrollBy, kInvalidNode, -1, -9999.0};
    overlay.apply(dom, up);
    EXPECT_DOUBLE_EQ(overlay.scrollY, 0.0);
}

// --------------------------------------------------------- WebApp

WebApp
makeTwoPageApp()
{
    WebApp app("testapp");
    for (int page = 0; page < 2; ++page) {
        DomTree dom;
        dom.node(dom.root()).rect = {0, 0, 360, 1280};
        const NodeId menu = dom.createNode(dom.root(), NodeRole::Container,
                                           {0, 56, 360, 96});
        dom.setDisplayed(menu, false);
        const NodeId toggle = dom.createNode(
            dom.root(), NodeRole::MenuToggle, {8, 8, 40, 40});
        HandlerSpec toggle_spec;
        toggle_spec.type = DomEventType::Click;
        toggle_spec.effect = {EffectKind::ToggleDisplay, menu, -1, 0.0};
        dom.addHandler(toggle, toggle_spec);

        const NodeId item =
            dom.createNode(menu, NodeRole::MenuItem, {0, 56, 360, 48});
        HandlerSpec nav;
        nav.type = DomEventType::Load;
        nav.effect = {EffectKind::Navigate, kInvalidNode, 1 - page, 0.0};
        dom.addHandler(item, nav);

        HandlerSpec move;
        move.type = DomEventType::Scroll;
        move.effect = {EffectKind::ScrollBy, kInvalidNode, -1, 384.0};
        dom.addHandler(dom.root(), move);
        app.addPage(std::move(dom));
    }
    return app;
}

TEST(WebAppSession, CommitTogglesAndNavigates)
{
    const WebApp app = makeTwoPageApp();
    WebAppSession session(app);
    EXPECT_EQ(session.currentPage(), 0);
    EXPECT_FALSE(session.dom().node(1).displayed);  // menu hidden

    session.commitEvent(2, DomEventType::Click);    // toggle
    EXPECT_TRUE(session.dom().node(1).displayed);

    session.commitEvent(3, DomEventType::Load);     // navigate
    EXPECT_EQ(session.currentPage(), 1);
    EXPECT_DOUBLE_EQ(session.viewport().scrollY, 0.0);
}

TEST(WebAppSession, NavigationResetsDestinationDom)
{
    const WebApp app = makeTwoPageApp();
    WebAppSession session(app);
    session.commitEvent(2, DomEventType::Click);  // open menu on page 0
    session.commitEvent(3, DomEventType::Load);   // to page 1
    session.commitEvent(3, DomEventType::Load);   // back to page 0
    // Fresh parse: the menu is hidden again.
    EXPECT_FALSE(session.dom().node(1).displayed);
}

TEST(WebAppSession, ScrollCommitMovesViewport)
{
    const WebApp app = makeTwoPageApp();
    WebAppSession session(app);
    session.commitEvent(0, DomEventType::Scroll);
    EXPECT_DOUBLE_EQ(session.viewport().scrollY, 384.0);
    // Clamped at page bottom (1280 - 640 = 640 max).
    session.commitEvent(0, DomEventType::Scroll);
    session.commitEvent(0, DomEventType::Scroll);
    EXPECT_DOUBLE_EQ(session.viewport().scrollY, 640.0);
}

TEST(WebAppSession, EventsWithoutHandlersAreNoOps)
{
    const WebApp app = makeTwoPageApp();
    WebAppSession session(app);
    session.commitEvent(2, DomEventType::Submit);   // no submit handler
    session.commitEvent(999, DomEventType::Click);  // no such node
    EXPECT_EQ(session.committedEvents(), 0);
}

// --------------------------------------------------------- Analyzer

TEST(DomAnalyzer, LnesListsOnlyVisibleHandlers)
{
    const WebApp app = makeTwoPageApp();
    WebAppSession session(app);
    DomAnalyzer analyzer(session);
    const auto lnes = analyzer.likelyNextEvents(session.snapshotState());
    // Toggle click + document scroll are visible; menu item is not.
    const bool has_toggle = std::any_of(
        lnes.begin(), lnes.end(), [](const CandidateEvent &c) {
            return c.node == 2 && c.type == DomEventType::Click;
        });
    const bool has_menu_item = std::any_of(
        lnes.begin(), lnes.end(),
        [](const CandidateEvent &c) { return c.node == 3; });
    EXPECT_TRUE(has_toggle);
    EXPECT_FALSE(has_menu_item);
}

TEST(DomAnalyzer, HypotheticalToggleEnlargesLnes)
{
    // Paper Sec. 5.2: the analyzer must compute the LNES *after* a
    // predicted menu-opening event without executing its callback.
    const WebApp app = makeTwoPageApp();
    WebAppSession session(app);
    DomAnalyzer analyzer(session);
    DomOverlay state = session.snapshotState();
    analyzer.applyHypothetical({DomEventType::Click, 2}, state);
    const auto lnes = analyzer.likelyNextEvents(state);
    const bool has_menu_item = std::any_of(
        lnes.begin(), lnes.end(), [](const CandidateEvent &c) {
            return c.node == 3 && c.type == DomEventType::Load;
        });
    EXPECT_TRUE(has_menu_item);
    // The committed session state is untouched.
    EXPECT_FALSE(session.dom().node(1).displayed);
}

TEST(DomAnalyzer, HypotheticalNavigationChangesPage)
{
    const WebApp app = makeTwoPageApp();
    WebAppSession session(app);
    DomAnalyzer analyzer(session);
    DomOverlay state = session.snapshotState();
    analyzer.applyHypothetical({DomEventType::Click, 2}, state);
    analyzer.applyHypothetical({DomEventType::Load, 3}, state);
    EXPECT_EQ(state.pageId, 1);
    EXPECT_TRUE(state.displayOverride.empty());
}

TEST(DomAnalyzer, ViewportStatsCountLinksAndClickables)
{
    const WebApp app = makeTwoPageApp();
    WebAppSession session(app);
    DomAnalyzer analyzer(session);
    const DomOverlay committed = session.snapshotState();
    const ViewportStats before = analyzer.viewportStats(committed);

    DomOverlay opened = committed;
    analyzer.applyHypothetical({DomEventType::Click, 2}, opened);
    const ViewportStats after = analyzer.viewportStats(opened);
    // Opening the menu exposes a nav item: link fraction must rise.
    EXPECT_GT(after.visibleLinkFrac, before.visibleLinkFrac);
    EXPECT_GT(after.clickableFrac, before.clickableFrac);
    EXPECT_TRUE(before.scrollable);
}

TEST(DomAnalyzer, AllPageEventsIgnoresVisibility)
{
    const WebApp app = makeTwoPageApp();
    WebAppSession session(app);
    DomAnalyzer analyzer(session);
    const auto all = analyzer.allPageEvents(session.snapshotState());
    const bool has_menu_item = std::any_of(
        all.begin(), all.end(),
        [](const CandidateEvent &c) { return c.node == 3; });
    EXPECT_TRUE(has_menu_item);  // hidden but registered
}

// ------------------------------------------------------ Render pipeline

TEST(RenderPipeline, StagesScaleWithDirtySize)
{
    RenderPipeline pipeline;
    const RenderWork small = pipeline.frameWork(150, 2);
    const RenderWork large = pipeline.frameWork(150, 30);
    EXPECT_GT(large.total().ndep, small.total().ndep);
    EXPECT_GT(large.total().tmemMs, small.total().tmemMs);
}

TEST(RenderPipeline, ScaleMultiplies)
{
    RenderPipeline pipeline;
    const RenderWork base = pipeline.frameWork(100, 5, 1.0);
    const RenderWork doubled = pipeline.frameWork(100, 5, 2.0);
    EXPECT_NEAR(doubled.total().ndep, 2.0 * base.total().ndep, 1e-9);
}

TEST(RenderPipeline, TotalIsSumOfStages)
{
    RenderPipeline pipeline;
    const RenderWork work = pipeline.frameWork(200, 8);
    Workload sum;
    for (int s = 0; s < kNumRenderStages; ++s)
        sum = sum + work.stages[static_cast<size_t>(s)];
    EXPECT_NEAR(sum.ndep, work.total().ndep, 1e-12);
    EXPECT_NEAR(sum.tmemMs, work.total().tmemMs, 1e-12);
}

TEST(RenderPipeline, TypicalTapFrameInPaperRegime)
{
    // A tap frame should cost on the order of 10-30 ms at the big
    // cluster's top frequency (the ~20 ms speculative frames of Fig. 10).
    RenderPipeline pipeline;
    const DvfsLatencyModel model(AcmpPlatform::exynos5410());
    const RenderWork work = pipeline.frameWork(150, 6);
    const TimeMs at_max =
        model.latency(work.total(), {CoreType::Big, 1800.0});
    EXPECT_GT(at_max, 5.0);
    EXPECT_LT(at_max, 40.0);
}

TEST(RenderWork, ScaledIsElementwise)
{
    RenderPipeline pipeline;
    const RenderWork work = pipeline.frameWork(100, 4);
    const RenderWork half = work.scaled(0.5);
    for (int s = 0; s < kNumRenderStages; ++s) {
        EXPECT_NEAR(half.stages[static_cast<size_t>(s)].ndep,
                    0.5 * work.stages[static_cast<size_t>(s)].ndep, 1e-12);
    }
}

// ------------------------------------------------------------ VSync

TEST(Vsync, PeriodAt60Hz)
{
    const VsyncClock vsync;
    EXPECT_NEAR(vsync.periodMs(), 16.6667, 1e-3);
}

TEST(Vsync, NextVsyncCeils)
{
    const VsyncClock vsync;
    const double period = vsync.periodMs();
    EXPECT_NEAR(vsync.nextVsyncAt(0.0), 0.0, 1e-9);
    EXPECT_NEAR(vsync.nextVsyncAt(1.0), period, 1e-9);
    EXPECT_NEAR(vsync.nextVsyncAt(period), period, 1e-6);
    EXPECT_NEAR(vsync.nextVsyncAt(period + 0.001), 2 * period, 1e-6);
}

/** A frame never waits more than one refresh period. */
class VsyncWaitBound : public ::testing::TestWithParam<double>
{
};

TEST_P(VsyncWaitBound, WaitWithinOnePeriod)
{
    const VsyncClock vsync;
    const double t = GetParam();
    const double displayed = vsync.nextVsyncAt(t);
    EXPECT_GE(displayed + 1e-9, t);
    EXPECT_LE(displayed - t, vsync.periodMs() + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Times, VsyncWaitBound,
                         ::testing::Values(0.0, 0.5, 16.0, 16.67, 17.0,
                                           100.0, 333.33, 1000.01,
                                           59999.5));

TEST(Vsync, FrameIndex)
{
    const VsyncClock vsync;
    EXPECT_EQ(vsync.frameIndexAt(0.0), 0);
    EXPECT_EQ(vsync.frameIndexAt(17.0), 1);
    EXPECT_EQ(vsync.frameIndexAt(1000.0), 60);
}

// --------------------------------------------------------- Event loop

TEST(EventLoop, FifoOrder)
{
    EventLoop loop;
    loop.push({0, 10.0});
    loop.push({1, 20.0});
    loop.push({2, 30.0});
    EXPECT_EQ(loop.length(), 3u);
    EXPECT_EQ(loop.front()->traceIndex, 0);
    EXPECT_EQ(loop.pop()->traceIndex, 0);
    EXPECT_EQ(loop.pop()->traceIndex, 1);
    EXPECT_EQ(loop.pop()->traceIndex, 2);
    EXPECT_FALSE(loop.pop().has_value());
}

TEST(EventLoop, LengthStatsSampledAtArrivals)
{
    EventLoop loop;
    loop.push({0, 0.0});   // length 1
    loop.push({1, 1.0});   // length 2
    loop.pop();
    loop.push({2, 2.0});   // length 2
    EXPECT_NEAR(loop.lengthStats().mean(), (1 + 2 + 2) / 3.0, 1e-12);
}

TEST(EventLoop, SnapshotPreservesOrder)
{
    EventLoop loop;
    loop.push({5, 1.0});
    loop.push({6, 2.0});
    const auto snap = loop.snapshot();
    ASSERT_EQ(snap.size(), 2u);
    EXPECT_EQ(snap[0].traceIndex, 5);
    EXPECT_EQ(snap[1].traceIndex, 6);
}

} // namespace
} // namespace pes
