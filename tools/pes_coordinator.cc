/**
 * @file
 * pes_coordinator: leased work-queue orchestration of one fleet sweep
 * across any number of pes_fleet workers sharing one ResultStore.
 *
 *   # Partition a sweep into leases and create the shared store:
 *   pes_coordinator init --queue-dir=Q --results-dir=R \
 *       --schedulers=pes,ebs --apps=cnn,amazon --users=120
 *
 *   # Supervise: expire dead leases, steal from stragglers, reduce
 *   # when the store covers the plan:
 *   pes_coordinator run --queue-dir=Q --out=fleet.json &
 *
 *   # Any number of workers, on any machines sharing the filesystem:
 *   pes_fleet work --coordinator=Q &
 *   pes_fleet work --coordinator=Q &
 *
 * Workers self-claim ranges through O_EXCL markers; the coordinator
 * only restores liveness (expiry/steal reopens with a bumped fencing
 * epoch). Kill workers freely: re-executed ranges produce duplicate
 * records that deduplicate at reduction, so the final report is
 * byte-identical to the same sweep run whole in one process
 * (`pes_fleet diff --exact` gates it in CI).
 */

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "coordinator/coordinator.hh"
#include "coordinator/lease_queue.hh"
#include "population/population_spec.hh"
#include "results/result_reduce.hh"
#include "results/result_store.hh"
#include "runner/fleet_runner.hh"
#include "runner/reporters.hh"
#include "telemetry/run_telemetry.hh"
#include "telemetry/telemetry.hh"
#include "util/logging.hh"
#include "util/strings.hh"
#include "util/table.hh"

using namespace pes;

namespace {

void
usage()
{
    std::cout <<
        "pes_coordinator - leased work-queue orchestration of one "
        "fleet sweep\n\n"
        "Verbs:\n"
        "  pes_coordinator init --queue-dir=DIR --results-dir=DIR "
        "[sweep flags]\n"
        "      [--grain=N] [--lease-ms=MS]\n"
        "      partition the sweep into job-range leases (grain jobs "
        "per range,\n"
        "      cell-aligned under --warm) and create the shared result "
        "store.\n"
        "      sweep flags: --schedulers --apps --devices --users "
        "--seed\n"
        "      --eval-population --population --warm --checkpoint-every "
        "(pes_fleet\n"
        "      defaults). --population=SPEC (built-in name or .json "
        "file) embeds the\n"
        "      mixture spec in queue.json so every worker re-derives "
        "identical seeds.\n"
        "      Scenario (stress) sweeps are not coordinatable yet — "
        "shard those.\n"
        "  pes_coordinator run --queue-dir=DIR [--out=FILE] "
        "[--csv=FILE]\n"
        "      [--interval-ms=MS] [--steal-factor=F] "
        "[--min-steal-ms=MS]\n"
        "      [--max-wall-ms=MS] [--once] [--telemetry-out=FILE] "
        "[--quiet]\n"
        "      supervise until every lease is done: reopen expired "
        "leases\n"
        "      (epoch+1 fences the dead holder), steal from stragglers "
        "when a\n"
        "      2x-faster peer exists, then verify the store covers the "
        "plan and\n"
        "      reduce it to the whole-run-identical reports.\n"
        "      exit: 0 done+reduced, 1 supervision error or wall "
        "budget\n"
        "      exceeded, 4 store fails coverage or reduction\n"
        "  pes_coordinator status --queue-dir=DIR\n"
        "      one table row per range (state, epoch, owner, age) plus "
        "worker\n"
        "      rates\n"
        "  pes_coordinator reduce --queue-dir=DIR [--out=FILE] "
        "[--csv=FILE]\n"
        "      reduce whatever the store holds right now (no "
        "completion check)\n";
}

bool
flagValue(const std::string &arg, const std::string &name,
          std::string &out)
{
    const std::string prefix = "--" + name + "=";
    if (!startsWith(arg, prefix))
        return false;
    out = arg.substr(prefix.size());
    return true;
}

long
parseLong(const std::string &value, const std::string &flag)
{
    long long v;
    fatal_if(!parseInt64(value, v), "bad value '%s' for --%s",
             value.c_str(), flag.c_str());
    return static_cast<long>(v);
}

LeaseQueue
openQueue(const std::string &queue_dir)
{
    fatal_if(queue_dir.empty(), "--queue-dir=DIR is required");
    std::string error;
    auto queue = LeaseQueue::open(queue_dir, &error);
    fatal_if(!queue, "%s", error.c_str());
    return std::move(*queue);
}

/** Open the queue's result store (it must exist — init created it). */
ResultStore
openStore(const LeaseQueue &queue)
{
    std::string error;
    auto store = ResultStore::open(queue.plan().resultsDir, &error);
    fatal_if(!store, "cannot open results store: %s", error.c_str());
    return std::move(*store);
}

void
writeReports(const FleetReport &report, const std::string &out_path,
             const std::string &csv_path)
{
    if (!out_path.empty()) {
        std::ofstream os(out_path);
        fatal_if(!os, "cannot open '%s'", out_path.c_str());
        JsonReporter::write(report, os);
        std::cout << "[json: " << out_path << "]\n";
    }
    if (!csv_path.empty()) {
        std::ofstream os(csv_path);
        fatal_if(!os, "cannot open '%s'", csv_path.c_str());
        CsvReporter::write(report, os);
        std::cout << "[csv: " << csv_path << "]\n";
    }
}

/** Reduce @p store and write reports; returns the exit code. */
int
reduceAndReport(const ResultStore &store, const std::string &out_path,
                const std::string &csv_path, bool quiet,
                uint64_t *sessions_out)
{
    std::string error;
    StoreReduction reduction;
    fatal_if(!reduceStore(store, reduction, &error), "%s",
             error.c_str());
    if (!reduction.problems.empty()) {
        for (const std::string &p : reduction.problems)
            std::cerr << "FAIL " << p << "\n";
        return 4;
    }
    if (sessions_out)
        *sessions_out = reduction.sessions;
    if (!quiet) {
        std::cout << "reduced " << reduction.sessions << " sessions";
        if (reduction.duplicates > 0)
            std::cout << " (" << reduction.duplicates
                      << " duplicate re-runs deduplicated)";
        if (reduction.missing > 0)
            std::cout << "; " << reduction.missing
                      << " expected sessions missing (partial sweep)";
        std::cout << "\n";
    }
    writeReports(makeStoreReport(store, reduction.metrics), out_path,
                 csv_path);
    return 0;
}

// ---------------------------------------------------------------- init

int
cmdInit(int argc, char **argv)
{
    std::string queue_dir, results_dir, population_ref;
    long grain = 0;
    long lease_ms = 30000;
    FleetConfig config;
    config.schedulers = parseSchedulerList("pes,ebs");
    config.apps = parseAppList("cnn,amazon,social_feed");
    config.users = 100;

    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        std::string value;
        if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (flagValue(arg, "queue-dir", value)) {
            queue_dir = value;
        } else if (flagValue(arg, "results-dir", value)) {
            results_dir = value;
        } else if (flagValue(arg, "grain", value)) {
            grain = parseLong(value, "grain");
            fatal_if(grain < 1, "--grain must be >= 1");
        } else if (flagValue(arg, "lease-ms", value)) {
            lease_ms = parseLong(value, "lease-ms");
            fatal_if(lease_ms < 100, "--lease-ms must be >= 100");
        } else if (arg == "--warm") {
            config.warmDrivers = true;
        } else if (arg == "--eval-population") {
            config.seedMode = SeedMode::Evaluation;
        } else if (flagValue(arg, "population", value)) {
            population_ref = value;
        } else if (flagValue(arg, "schedulers", value)) {
            config.schedulers = parseSchedulerList(value);
        } else if (flagValue(arg, "apps", value)) {
            config.apps = parseAppList(value);
        } else if (flagValue(arg, "devices", value)) {
            config.devices = parseDeviceList(value);
        } else if (flagValue(arg, "users", value)) {
            const long users = parseLong(value, "users");
            fatal_if(users < 1 || users > 100000000,
                     "--users must be in [1, 1e8]");
            config.users = static_cast<int>(users);
        } else if (flagValue(arg, "seed", value)) {
            uint64_t seed;
            fatal_if(!parseUint64(value, seed),
                     "bad value '%s' for --seed", value.c_str());
            config.baseSeed = seed;
        } else if (flagValue(arg, "checkpoint-every", value)) {
            const long every = parseLong(value, "checkpoint-every");
            fatal_if(every < 0 || every > 100000000,
                     "--checkpoint-every must be in [0, 1e8]");
            config.checkpointEvery = static_cast<int>(every);
        } else {
            std::cerr << "init: unknown option '" << arg << "'\n\n";
            usage();
            return 1;
        }
    }
    fatal_if(queue_dir.empty(), "init: --queue-dir=DIR is required");
    fatal_if(results_dir.empty(),
             "init: --results-dir=DIR is required");

    // Mixture population: resolved here, embedded in queue.json below
    // so workers reconstruct the exact spec (and digest) from the plan.
    std::optional<PopulationSpec> population;
    if (!population_ref.empty()) {
        fatal_if(config.seedMode == SeedMode::Evaluation,
                 "--population cannot be combined with "
                 "--eval-population");
        std::vector<IntegrityProblem> problems;
        population = resolvePopulation(population_ref, problems);
        if (!population) {
            for (const IntegrityProblem &p : problems)
                std::cerr << "FAIL " << p.message << "\n";
            return integrityExitCode(problems);
        }
        config.population = &*population;
        config.populationTag = populationTag(*population);
        config.populationDigest = populationDigest(*population);
    }

    // The store is created first, with the same spec workers re-derive
    // from queue.json — so the queue's identity and the manifest's can
    // never drift apart.
    const SweepSpec spec = SweepSpec::fromConfig(config);
    std::string error;
    auto store = ResultStore::create(results_dir, spec, &error);
    fatal_if(!store, "init: %s", error.c_str());

    const int jobs = config.jobCount();
    const int users_per_cell = config.effectiveUsers();
    int effective_grain =
        grain > 0 ? static_cast<int>(grain) : users_per_cell;
    if (config.warmDrivers)
        effective_grain = alignedGrain(effective_grain, users_per_cell);

    QueuePlan plan;
    plan.resultsDir = results_dir;
    plan.leaseMs = lease_ms;
    plan.grain = effective_grain;
    plan.baseSeed = config.baseSeed;
    plan.seedMode = spec.seedMode;
    plan.users = users_per_cell;
    plan.warmDrivers = config.warmDrivers;
    plan.checkpointEvery = config.checkpointEvery;
    plan.devices = spec.devices;
    plan.apps = spec.apps;
    plan.schedulers = spec.schedulers;
    plan.population = population;
    plan.ranges = partitionJobs(jobs, effective_grain);

    auto queue = LeaseQueue::create(queue_dir, plan, &error);
    fatal_if(!queue, "init: %s", error.c_str());

    std::cout << "queue " << queue_dir << ": " << plan.ranges.size()
              << " range(s) of <= " << effective_grain << " jobs over "
              << jobs << " sessions; lease " << lease_ms
              << " ms; store " << results_dir << "\n"
              << "start workers with: pes_fleet work --coordinator="
              << queue_dir << "\n";
    return 0;
}

// ----------------------------------------------------------------- run

int
cmdRun(int argc, char **argv)
{
    std::string queue_dir, out_path, csv_path, telemetry_out;
    long interval_ms = 200;
    long max_wall_ms = 0;
    bool once = false;
    bool quiet = false;
    CoordinatorOptions options;

    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        std::string value;
        if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--once") {
            once = true;
        } else if (flagValue(arg, "queue-dir", value)) {
            queue_dir = value;
        } else if (flagValue(arg, "out", value)) {
            out_path = value;
        } else if (flagValue(arg, "csv", value)) {
            csv_path = value;
        } else if (flagValue(arg, "telemetry-out", value)) {
            telemetry_out = value;
        } else if (flagValue(arg, "interval-ms", value)) {
            interval_ms = parseLong(value, "interval-ms");
            fatal_if(interval_ms < 10,
                     "--interval-ms must be >= 10");
        } else if (flagValue(arg, "max-wall-ms", value)) {
            max_wall_ms = parseLong(value, "max-wall-ms");
        } else if (flagValue(arg, "steal-factor", value)) {
            double f;
            fatal_if(!parseDouble(value, f) || f < 1.0,
                     "--steal-factor must be >= 1");
            options.stealFactor = f;
        } else if (flagValue(arg, "min-steal-ms", value)) {
            options.minStealMs = parseLong(value, "min-steal-ms");
        } else {
            std::cerr << "run: unknown option '" << arg << "'\n\n";
            usage();
            return 1;
        }
    }
    LeaseQueue queue = openQueue(queue_dir);

    TelemetryRegistry telemetry;
    telemetry.setEnabled(true);
    CoordinatorStats stats;
    const int64_t started = wallClockMs();
    std::string error;

    for (;;) {
        if (!coordinatorPass(queue, wallClockMs(), options, stats,
                             &telemetry, &error)) {
            std::cerr << "FAIL coordinator: " << error << "\n";
            return 1;
        }
        if (sweepDone(stats))
            break;
        if (once)
            break;
        if (max_wall_ms > 0 && wallClockMs() - started > max_wall_ms) {
            std::cerr << "FAIL coordinator: sweep not done within "
                      << max_wall_ms << " ms (open=" << stats.open
                      << " leased=" << stats.leased << " done="
                      << stats.done << ")\n";
            return 1;
        }
        std::this_thread::sleep_for(
            std::chrono::milliseconds(interval_ms));
    }

    const uint64_t issued = queue.claimMarkers();
    std::cout << "coordinator: " << stats.done << "/"
              << queue.plan().ranges.size() << " ranges done, leases "
              << "issued " << issued << ", expired " << stats.expired
              << ", stolen " << stats.stolen << "\n";

    if (once && !sweepDone(stats))
        return 0;

    // Every lease is done — but the contract is with the STORE, not
    // the ledger: verify plan coverage before reducing.
    ResultStore store = openStore(queue);
    uint64_t missing = 0;
    if (!storeCoversSweep(store, &missing, &error)) {
        if (!error.empty()) {
            std::cerr << "FAIL coordinator: " << error << "\n";
            return 4;
        }
        std::cerr << "FAIL coordinator: all leases done but the store "
                  << "is missing " << missing
                  << " expected session(s)\n";
        return 4;
    }
    uint64_t sessions = 0;
    const int code =
        reduceAndReport(store, out_path, csv_path, quiet, &sessions);
    if (code != 0)
        return code;

    if (!telemetry_out.empty()) {
        telemetry.count("coord.leases_issued", issued);
        telemetry.count("coord.ranges",
                        static_cast<uint64_t>(
                            queue.plan().ranges.size()));
        RunTelemetry rt;
        rt.tool = "coordinator";
        rt.threads = 1;
        rt.sessions = sessions;
        rt.totalMs = static_cast<double>(wallClockMs() - started);
        rt.counters = telemetry.snapshot();
        std::ofstream os(telemetry_out);
        fatal_if(!os, "cannot open '%s'", telemetry_out.c_str());
        writeRunTelemetryJson(rt, os);
        std::cout << "[telemetry: " << telemetry_out << "]\n";
    }
    return 0;
}

// -------------------------------------------------------------- status

int
cmdStatus(int argc, char **argv)
{
    std::string queue_dir;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        std::string value;
        if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (flagValue(arg, "queue-dir", value)) {
            queue_dir = value;
        } else {
            std::cerr << "status: unknown option '" << arg << "'\n\n";
            usage();
            return 1;
        }
    }
    LeaseQueue queue = openQueue(queue_dir);
    std::vector<Lease> leases;
    std::string error;
    fatal_if(!queue.loadLeases(&leases, &error), "%s", error.c_str());

    const int64_t now = wallClockMs();
    Table table({"range", "jobs", "state", "epoch", "owner", "age(s)"});
    for (const Lease &lease : leases) {
        const char *state = lease.state == LeaseState::Open ? "open"
            : lease.state == LeaseState::Leased ? "leased"
                                                : "done";
        table.beginRow()
            .cell(static_cast<long>(lease.seq))
            .cell("[" + std::to_string(lease.first) + ", +" +
                  std::to_string(lease.count) + ")")
            .cell(std::string(state))
            .cell(static_cast<long>(lease.epoch))
            .cell(lease.owner.empty() ? "-" : lease.owner)
            .cell(lease.state == LeaseState::Leased
                      ? static_cast<double>(now - lease.sinceMs) /
                          1000.0
                      : 0.0,
                  1);
    }
    table.print(std::cout);

    const auto rates = queue.workerRates();
    if (!rates.empty()) {
        Table workers({"worker", "sessions", "sessions/s"});
        for (const WorkerRate &rate : rates) {
            workers.beginRow()
                .cell(rate.worker)
                .cell(static_cast<long>(rate.sessions))
                .cell(rate.sessionsPerSec, 1);
        }
        workers.print(std::cout);
    }
    std::cout << "leases issued so far: " << queue.claimMarkers()
              << "\n";
    return 0;
}

// -------------------------------------------------------------- reduce

int
cmdReduce(int argc, char **argv)
{
    std::string queue_dir, out_path, csv_path;
    bool quiet = false;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        std::string value;
        if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (flagValue(arg, "queue-dir", value)) {
            queue_dir = value;
        } else if (flagValue(arg, "out", value)) {
            out_path = value;
        } else if (flagValue(arg, "csv", value)) {
            csv_path = value;
        } else {
            std::cerr << "reduce: unknown option '" << arg << "'\n\n";
            usage();
            return 1;
        }
    }
    LeaseQueue queue = openQueue(queue_dir);
    ResultStore store = openStore(queue);
    return reduceAndReport(store, out_path, csv_path, quiet, nullptr);
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string verb = argc > 1 ? argv[1] : "";
    if (verb == "init")
        return cmdInit(argc, argv);
    if (verb == "run")
        return cmdRun(argc, argv);
    if (verb == "status")
        return cmdStatus(argc, argv);
    if (verb == "reduce")
        return cmdReduce(argc, argv);
    if (verb == "--help" || verb == "-h") {
        usage();
        return 0;
    }
    std::cerr << "pes_coordinator: unknown verb '" << verb << "'\n\n";
    usage();
    return 1;
}
