/**
 * @file
 * pes_corpus — trace-corpus management: record sessions to disk, replay
 * fleet sweeps straight off a corpus, and derive mutated scenario
 * variants. The on-disk format is the versioned, checksummed .ptrc
 * layout (src/corpus/trace_format.hh) indexed by a JSON manifest.
 *
 *   pes_corpus record   --dir=corpus --apps=cnn,social_feed --users=100
 *   pes_corpus inspect  --dir=corpus [--app=cnn] [--device=NAME] [--user=S]
 *   pes_corpus validate --dir=corpus
 *   pes_corpus replay   --dir=corpus --schedulers=pes,ebs --out=rep.json
 *   pes_corpus mutate   --dir=corpus --into=stress --op=burst --rate=0.3
 *
 * record derives user seeds exactly like pes_fleet (same --seed /
 * --eval-population semantics), so `pes_fleet --corpus=DIR` with the
 * same axes replays byte-identically to live synthesis.
 */

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "core/experiment.hh"
#include "corpus/corpus_store.hh"
#include "corpus/trace_mutator.hh"
#include "util/integrity.hh"
#include "runner/fleet_runner.hh"
#include "runner/reporters.hh"
#include "util/logging.hh"
#include "util/strings.hh"
#include "util/table.hh"

using namespace pes;

namespace {

int
usage()
{
    std::cerr <<
        "pes_corpus - record / replay / mutate persisted trace corpora\n"
        "\n"
        "usage:\n"
        "  pes_corpus record   --dir=DIR [--apps=LIST] [--devices=LIST]\n"
        "                      [--users=N] [--seed=S] [--eval-population]\n"
        "                      [--quiet]\n"
        "  pes_corpus inspect  --dir=DIR [--app=NAME] [--device=NAME]\n"
        "                      [--user=SEED]\n"
        "  pes_corpus validate --dir=DIR [--segment=K/N] [--quiet]\n"
        "                      exit: 0 clean, 3 missing files, 4 corrupt.\n"
        "                      --segment streams one segment manifest of "
        "an N-way\n"
        "                      split (memory bounded by that segment)\n"
        "  pes_corpus shard    --dir=DIR --segments=N [--quiet]\n"
        "                      split manifest.json into N hashed-seed "
        "segment\n"
        "                      manifests (manifest.seg-K-of-N.json); "
        "traces stay\n"
        "                      put, and open() reads the segment set as "
        "one corpus\n"
        "  pes_corpus replay   --dir=DIR [--schedulers=LIST] [--threads=N]\n"
        "                      [--warm] [--out=FILE] [--csv=FILE] [--quiet]\n"
        "  pes_corpus mutate   --dir=DIR --into=DIR --op=OP [--seed=S]\n"
        "                      ops: time-scale --factor=F\n"
        "                           event-drop --drop=P\n"
        "                           burst      --rate=R --burst=N\n"
        "                           concat     --gap=MS\n"
        "                           jitter     --magnitude=M\n";
    return 2;
}

long
requireLong(const std::string &value, const char *flag, long lo, long hi)
{
    long long v;
    fatal_if(!parseInt64(value, v) || v < lo || v > hi,
             "bad value '%s' for --%s (expected integer in [%ld, %ld])",
             value.c_str(), flag, lo, hi);
    return static_cast<long>(v);
}

uint64_t
requireSeed(const std::string &value, const char *flag)
{
    uint64_t v;
    fatal_if(!parseUint64(value, v), "bad value '%s' for --%s",
             value.c_str(), flag);
    return v;
}

double
requireDouble(const std::string &value, const char *flag, double lo,
              double hi)
{
    double v;
    fatal_if(!parseDouble(value, v) || v < lo || v > hi,
             "bad value '%s' for --%s (expected number in [%g, %g])",
             value.c_str(), flag, lo, hi);
    return v;
}

CorpusStore
openOrDie(const std::string &dir)
{
    fatal_if(dir.empty(), "--dir is required");
    std::string error;
    auto store = CorpusStore::open(dir, &error);
    fatal_if(!store, "cannot open corpus: %s", error.c_str());
    return std::move(*store);
}

// ------------------------------------------------------------- record

int
cmdRecord(const std::vector<std::pair<std::string, std::string>> &flags)
{
    std::string dir;
    std::vector<AppProfile> apps = parseAppList("cnn,amazon,social_feed");
    std::vector<AcmpPlatform> devices{AcmpPlatform::exynos5410()};
    FleetConfig seeds;  // only the user-seed derivation is used
    int users = 100;
    bool quiet = false;

    for (const auto &[name, value] : flags) {
        if (name == "dir") {
            dir = value;
        } else if (name == "apps") {
            apps = parseAppList(value);
        } else if (name == "devices") {
            devices = parseDeviceList(value);
        } else if (name == "users") {
            users = static_cast<int>(
                requireLong(value, "users", 1, 100000000));
        } else if (name == "seed") {
            seeds.baseSeed = requireSeed(value, "seed");
        } else if (name == "eval-population") {
            seeds.seedMode = SeedMode::Evaluation;
        } else if (name == "quiet") {
            quiet = true;
        } else {
            fatal("record: unknown option '--%s'", name.c_str());
        }
    }
    fatal_if(dir.empty(), "--dir is required");

    std::string error;
    auto store = CorpusStore::create(dir, &error);
    fatal_if(!store, "cannot create corpus: %s", error.c_str());

    uint64_t events = 0;
    int recorded = 0;
    for (const AcmpPlatform &platform : devices) {
        TraceGenerator generator(platform);
        TraceProvenance provenance;
        provenance.device = platform.name();
        provenance.params = {{"source", "synthetic"},
                             {"seed_mode",
                              seeds.seedMode == SeedMode::Fleet
                                  ? "fleet"
                                  : "evaluation"}};
        for (const AppProfile &profile : apps) {
            for (int u = 0; u < users; ++u) {
                const InteractionTrace trace = generator.generate(
                    profile, fleetUserSeed(seeds, u));
                fatal_if(!store->add(trace, provenance, &error),
                         "record failed: %s", error.c_str());
                events += trace.events.size();
                ++recorded;
            }
        }
    }
    fatal_if(!store->save(&error), "cannot save manifest: %s",
             error.c_str());
    if (!quiet) {
        std::cout << "recorded " << recorded << " traces ("
                  << events << " events) into " << dir << " ("
                  << store->entries().size() << " total)\n";
    }
    return 0;
}

// ------------------------------------------------------------ inspect

int
cmdInspect(const std::vector<std::pair<std::string, std::string>> &flags)
{
    std::string dir, app_filter, device_filter;
    bool have_user_filter = false;
    uint64_t user_filter = 0;
    for (const auto &[name, value] : flags) {
        if (name == "dir") {
            dir = value;
        } else if (name == "app") {
            app_filter = value;
        } else if (name == "device") {
            device_filter = value;
        } else if (name == "user") {
            user_filter = requireSeed(value, "user");
            have_user_filter = true;
        } else {
            fatal("inspect: unknown option '--%s'", name.c_str());
        }
    }
    const CorpusStore store = openOrDie(dir);

    Table table({"app", "device", "user_seed", "events", "checksum",
                 "file"});
    uint64_t events = 0;
    int shown = 0;
    for (const CorpusEntry &e : store.entries()) {
        if (!app_filter.empty() && e.app != app_filter)
            continue;
        if (!device_filter.empty() && e.device != device_filter)
            continue;
        if (have_user_filter && e.userSeed != user_filter)
            continue;
        char checksum[32];
        std::snprintf(checksum, sizeof(checksum), "%016llx",
                      static_cast<unsigned long long>(e.checksum));
        table.beginRow()
            .cell(e.app)
            .cell(e.device)
            .cell(std::to_string(e.userSeed))
            .cell(static_cast<long>(e.eventCount))
            .cell(std::string(checksum))
            .cell(e.file);
        events += e.eventCount;
        ++shown;
    }
    table.print(std::cout);
    std::cout << shown << " of " << store.entries().size()
              << " traces, " << events << " events\n";
    return 0;
}

// ----------------------------------------------------------- validate

int
cmdValidate(const std::vector<std::pair<std::string, std::string>> &flags)
{
    std::string dir;
    long seg_k = -1, seg_n = 0;
    bool quiet = false;
    for (const auto &[name, value] : flags) {
        if (name == "dir") {
            dir = value;
        } else if (name == "segment") {
            const size_t slash = value.find('/');
            fatal_if(slash == std::string::npos,
                     "--segment expects K/N (e.g. 0/4), got '%s'",
                     value.c_str());
            seg_k = requireLong(value.substr(0, slash), "segment", 0,
                                1000000);
            seg_n = requireLong(value.substr(slash + 1), "segment", 1,
                                1000000);
            fatal_if(seg_k >= seg_n, "--segment=K/N needs K < N");
        } else if (name == "quiet") {
            quiet = true;
        } else {
            fatal("validate: unknown option '--%s'", name.c_str());
        }
    }
    std::optional<CorpusStore> store;
    if (seg_n > 0) {
        fatal_if(dir.empty(), "--dir is required");
        std::string error;
        store = CorpusStore::openSegment(dir, static_cast<int>(seg_k),
                                         static_cast<int>(seg_n), &error);
        fatal_if(!store, "cannot open segment: %s", error.c_str());
    } else {
        store = openOrDie(dir);
    }
    std::vector<CorpusProblem> problems;
    if (!store->validate(problems)) {
        if (!quiet) {
            for (const CorpusProblem &p : problems)
                std::cerr << "FAIL " << p.message << "\n";
            std::cerr << problems.size() << " problem(s) in " << dir
                      << "\n";
        }
        return integrityExitCode(problems);
    }
    if (!quiet) {
        std::cout << "OK: " << store->entries().size()
                  << " traces verified in " << dir
                  << (seg_n > 0 ? " (segment " + std::to_string(seg_k) +
                          "/" + std::to_string(seg_n) + ")"
                                : "")
                  << "\n";
    }
    return 0;
}

// -------------------------------------------------------------- shard

int
cmdShard(const std::vector<std::pair<std::string, std::string>> &flags)
{
    std::string dir;
    long segments = 0;
    bool quiet = false;
    for (const auto &[name, value] : flags) {
        if (name == "dir")
            dir = value;
        else if (name == "segments")
            segments = requireLong(value, "segments", 1, 1000000);
        else if (name == "quiet")
            quiet = true;
        else
            fatal("shard: unknown option '--%s'", name.c_str());
    }
    fatal_if(segments < 1, "--segments=N is required");

    CorpusStore store = openOrDie(dir);
    fatal_if(store.segmentCount() > 0,
             "corpus '%s' is already segmented %d-way", dir.c_str(),
             store.segmentCount());
    std::string error;
    fatal_if(!store.shard(static_cast<int>(segments), &error),
             "shard failed: %s", error.c_str());
    if (!quiet) {
        std::cout << "sharded " << store.entries().size()
                  << " traces into " << segments
                  << " segment manifest(s) in " << dir << "\n"
                  << "validate per segment with: pes_corpus validate "
                     "--dir=" << dir << " --segment=K/" << segments
                  << "\n";
    }
    return 0;
}

// ------------------------------------------------------------- replay

int
cmdReplay(const std::vector<std::pair<std::string, std::string>> &flags)
{
    std::string dir, out_path, csv_path;
    FleetConfig config;
    config.schedulers = {SchedulerKind::Pes, SchedulerKind::Ebs};
    config.threads = Experiment::defaultSweepThreads();
    bool quiet = false;

    for (const auto &[name, value] : flags) {
        if (name == "dir") {
            dir = value;
        } else if (name == "schedulers") {
            config.schedulers = parseSchedulerList(value);
        } else if (name == "threads") {
            config.threads = static_cast<int>(
                requireLong(value, "threads", 1, 4096));
        } else if (name == "warm") {
            config.warmDrivers = true;
        } else if (name == "out") {
            out_path = value;
        } else if (name == "csv") {
            csv_path = value;
        } else if (name == "quiet") {
            quiet = true;
        } else {
            fatal("replay: unknown option '--%s'", name.c_str());
        }
    }
    const CorpusStore store = openOrDie(dir);
    fatal_if(store.entries().empty(), "corpus '%s' is empty",
             dir.c_str());

    // The sweep axes come from the manifest: every distinct app, device
    // and user seed the corpus holds (the runner validates that the
    // full cross-product is recorded).
    std::map<std::string, bool> apps;
    std::map<std::string, bool> devices;
    std::vector<uint64_t> seeds;
    for (const CorpusEntry &e : store.entries()) {
        apps.emplace(e.app, true);
        devices.emplace(e.device, true);
        seeds.push_back(e.userSeed);
    }
    std::sort(seeds.begin(), seeds.end());
    seeds.erase(std::unique(seeds.begin(), seeds.end()), seeds.end());
    for (const auto &[app, unused] : apps) {
        (void)unused;
        config.apps.push_back(appByName(app));
    }
    for (const auto &[device, unused] : devices) {
        (void)unused;
        const auto platform = deviceByPlatformName(device);
        fatal_if(!platform,
                 "corpus device '%s' matches no known platform",
                 device.c_str());
        config.devices.push_back(*platform);
    }
    config.userSeeds = std::move(seeds);
    config.corpus = &store;

    setQuiet(true);
    FleetRunner runner(std::move(config));
    const FleetConfig &cfg = runner.config();
    if (!quiet) {
        std::cout << "replaying " << runner.jobs().size()
                  << " sessions off " << dir << " ("
                  << cfg.apps.size() << " apps x "
                  << cfg.schedulers.size() << " schedulers x "
                  << cfg.devices.size() << " devices x "
                  << cfg.effectiveUsers() << " users, " << cfg.threads
                  << " threads)\n";
        std::cout.flush();
    }
    FleetOutcome outcome = runner.run();
    const FleetReport report = makeFleetReport(cfg, outcome.metrics);

    Table table({"device", "app", "scheduler", "sessions", "viol%",
                 "energy(mJ)", "lat(ms)", "p95(ms)"});
    for (const CellSummary &c : report.cells) {
        table.beginRow()
            .cell(c.device)
            .cell(c.app)
            .cell(c.scheduler)
            .cell(static_cast<long>(c.sessions))
            .cell(c.violationRate * 100.0, 2)
            .cell(c.meanEnergyMj, 1)
            .cell(c.meanLatencyMs, 2)
            .cell(c.p95SessionLatencyMs, 2);
    }
    table.print(std::cout);

    if (!out_path.empty()) {
        std::ofstream os(out_path);
        fatal_if(!os, "cannot open '%s'", out_path.c_str());
        JsonReporter::write(report, os);
        std::cout << "[json: " << out_path << "]\n";
    }
    if (!csv_path.empty()) {
        std::ofstream os(csv_path);
        fatal_if(!os, "cannot open '%s'", csv_path.c_str());
        CsvReporter::write(report, os);
        std::cout << "[csv: " << csv_path << "]\n";
    }
    if (!quiet) {
        std::cout << outcome.jobCount << " sessions replayed from "
                  << outcome.tracesFromCorpus << " recorded traces in "
                  << formatDouble(outcome.wallMs / 1000.0, 2) << " s\n";
    }
    if (!outcome.diagnostics.empty()) {
        for (const std::string &d : outcome.diagnostics)
            std::cerr << "FAIL " << d << "\n";
        std::cerr << outcome.diagnostics.size()
                  << " run-level problem(s); the report covers "
                     "completed sessions only\n";
        return 1;
    }
    return 0;
}

// ------------------------------------------------------------- mutate

int
cmdMutate(const std::vector<std::pair<std::string, std::string>> &flags)
{
    std::string dir, into, op;
    double factor = 1.5;
    double drop = 0.2;
    double rate = 0.25;
    int burst = 4;
    double gap_ms = 4000.0;
    double magnitude = 0.3;
    uint64_t seed = 0x5eedc0de;
    bool quiet = false;
    std::vector<std::string> param_flags;  // validated against --op below

    for (const auto &[name, value] : flags) {
        if (name == "dir") {
            dir = value;
        } else if (name == "into") {
            into = value;
        } else if (name == "op") {
            op = value;
        } else if (name == "factor") {
            factor = requireDouble(value, "factor", 1e-3, 1e3);
            param_flags.push_back(name);
        } else if (name == "drop") {
            drop = requireDouble(value, "drop", 0.0, 1.0);
            param_flags.push_back(name);
        } else if (name == "rate") {
            rate = requireDouble(value, "rate", 0.0, 1.0);
            param_flags.push_back(name);
        } else if (name == "burst") {
            burst = static_cast<int>(requireLong(value, "burst", 1, 1000));
            param_flags.push_back(name);
        } else if (name == "gap") {
            gap_ms = requireDouble(value, "gap", 0.0, 1e9);
            param_flags.push_back(name);
        } else if (name == "magnitude") {
            magnitude = requireDouble(value, "magnitude", 0.0, 1.0);
            param_flags.push_back(name);
        } else if (name == "seed") {
            seed = requireSeed(value, "seed");
        } else if (name == "quiet") {
            quiet = true;
        } else {
            fatal("mutate: unknown option '--%s'", name.c_str());
        }
    }
    fatal_if(into.empty(), "--into (destination corpus) is required");
    fatal_if(op != "time-scale" && op != "event-drop" && op != "burst" &&
             op != "concat" && op != "jitter",
             "unknown --op '%s' (time-scale, event-drop, burst, concat, "
             "jitter)",
             op.c_str());
    // Reject parameters the chosen operator ignores: silently falling
    // back to a default would record a wrong-but-plausible corpus.
    for (const std::string &flag : param_flags) {
        const bool applies =
            (op == "time-scale" && flag == "factor") ||
            (op == "event-drop" && flag == "drop") ||
            (op == "burst" && (flag == "rate" || flag == "burst")) ||
            (op == "concat" && flag == "gap") ||
            (op == "jitter" && flag == "magnitude");
        fatal_if(!applies, "--%s does not apply to --op=%s", flag.c_str(),
                 op.c_str());
    }

    const CorpusStore source = openOrDie(dir);
    std::string error;
    auto dest = CorpusStore::create(into, &error);
    fatal_if(!dest, "cannot create corpus: %s", error.c_str());

    const TraceMutator mutator(seed);
    char desc[96];
    if (op == "time-scale") {
        std::snprintf(desc, sizeof(desc), "time-scale:%g", factor);
    } else if (op == "event-drop") {
        std::snprintf(desc, sizeof(desc), "event-drop:%g", drop);
    } else if (op == "burst") {
        std::snprintf(desc, sizeof(desc), "burst:%g:x%d", rate, burst);
    } else if (op == "jitter") {
        std::snprintf(desc, sizeof(desc), "jitter:%g", magnitude);
    } else {
        std::snprintf(desc, sizeof(desc), "concat:gap=%g", gap_ms);
    }

    int written = 0;
    const auto emit = [&](const CorpusEntry &entry,
                          const InteractionTrace &mutant) {
        TraceProvenance provenance;
        provenance.device = entry.device;
        provenance.params = {{"mutation", desc},
                             {"source", entry.file},
                             {"mutation_seed", std::to_string(seed)}};
        fatal_if(!dest->add(mutant, provenance, &error),
                 "mutate failed: %s", error.c_str());
        ++written;
    };

    if (op == "concat") {
        // Pair consecutive sessions of the same (app, device) group —
        // entries() is already in canonical (app, device, seed) order.
        const auto &entries = source.entries();
        size_t i = 0;
        while (i + 1 < entries.size()) {
            const CorpusEntry &a = entries[i];
            const CorpusEntry &b = entries[i + 1];
            if (a.app != b.app || a.device != b.device) {
                ++i;  // groups misaligned: slide to the next group
                continue;
            }
            const auto ta = source.load(a, &error);
            fatal_if(!ta, "mutate: %s", error.c_str());
            const auto tb = source.load(b, &error);
            fatal_if(!tb, "mutate: %s", error.c_str());
            emit(a, mutator.concatenate(*ta, *tb, gap_ms));
            i += 2;
        }
    } else {
        const bool ok = source.forEach(
            [&](const CorpusEntry &entry, const InteractionTrace &trace) {
                if (op == "time-scale")
                    emit(entry, mutator.timeScale(trace, factor));
                else if (op == "event-drop")
                    emit(entry, mutator.dropEvents(trace, drop));
                else if (op == "jitter")
                    emit(entry,
                         mutator.jitterWorkloads(trace, magnitude));
                else
                    emit(entry, mutator.injectBursts(trace, rate, burst));
                return true;
            },
            &error);
        fatal_if(!ok, "mutate: %s", error.c_str());
    }
    fatal_if(!dest->save(&error), "cannot save manifest: %s",
             error.c_str());
    if (!quiet) {
        std::cout << "wrote " << written << " " << desc
                  << " variants into " << into << "\n";
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string cmd = argv[1];
    if (cmd == "--help" || cmd == "-h")
        return usage();

    // Uniform "--name=value" / "--switch" flag collection.
    std::vector<std::pair<std::string, std::string>> flags;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h")
            return usage();
        if (!startsWith(arg, "--")) {
            std::cerr << "unexpected argument '" << arg << "'\n";
            return usage();
        }
        const size_t eq = arg.find('=');
        if (eq == std::string::npos)
            flags.emplace_back(arg.substr(2), "");
        else
            flags.emplace_back(arg.substr(2, eq - 2), arg.substr(eq + 1));
    }

    if (cmd == "record")
        return cmdRecord(flags);
    if (cmd == "inspect")
        return cmdInspect(flags);
    if (cmd == "validate")
        return cmdValidate(flags);
    if (cmd == "shard")
        return cmdShard(flags);
    if (cmd == "replay")
        return cmdReplay(flags);
    if (cmd == "mutate")
        return cmdMutate(flags);
    std::cerr << "unknown command '" << cmd << "'\n";
    return usage();
}
