/**
 * @file
 * pes_fleet: batch fleet simulation over the scheduler x app x device x
 * user cross-product, with persistent, resumable, shardable sweeps.
 *
 *   pes_fleet --schedulers=pes,ebs --apps=cnn,amazon,social_feed \
 *             --users=1000 --threads=8 --out=fleet.json --csv=fleet.csv
 *
 *   # One sweep split across two machines, then merged:
 *   pes_fleet ... --shard=0/2 --results-dir=shard0   # machine A
 *   pes_fleet ... --shard=1/2 --results-dir=shard1   # machine B
 *   pes_fleet merge --into=all --from=shard0,shard1 --out=fleet.json
 *
 *   # Killed at 90%? Finish the remaining 10%:
 *   pes_fleet ... --results-dir=sweep --resume
 *
 * Runs users x apps x schedulers x devices sessions on a worker pool and
 * writes deterministic JSON/CSV reports: the report bytes are identical
 * for any --threads value, any shard split, and any kill/resume
 * boundary (wall-clock and throughput go to stdout only).
 */

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <thread>
#include <utility>

#include "coordinator/lease_queue.hh"
#include "core/experiment.hh"
#include "corpus/corpus_store.hh"
#include "population/population_spec.hh"
#include "results/report_diff.hh"
#include "results/result_reduce.hh"
#include "results/tolerance.hh"
#include "results/result_store.hh"
#include "results/robustness.hh"
#include "runner/fleet_runner.hh"
#include "runner/reporters.hh"
#include "scenario/scenario_plan.hh"
#include "telemetry/run_telemetry.hh"
#include "telemetry/telemetry.hh"
#include "telemetry/trace_sink.hh"
#include "util/logging.hh"
#include "util/strings.hh"
#include "util/table.hh"

using namespace pes;

namespace {

void
usage()
{
    std::cout <<
        "pes_fleet - batch fleet simulation (schedulers x apps x "
        "devices x users)\n\n"
        "Options (defaults in brackets):\n"
        "  --schedulers=LIST  comma list: interactive, ondemand, ebs, "
        "pes, oracle [pes,ebs]\n"
        "  --apps=LIST        app names, or groups seen/unseen/all/extra "
        "[cnn,amazon,social_feed]\n"
        "  --devices=LIST     exynos5410, tegra-parker [exynos5410]\n"
        "  --users=N          simulated users per cell [100]\n"
        "  --threads=N        worker threads [hardware concurrency]\n"
        "  --seed=S           base seed of the fleet population "
        "[0xf1ee7]\n"
        "  --eval-population  draw users from the paper's Sec.-6.1 "
        "evaluation seeds\n"
        "  --population=SPEC  draw users from a mixture population: a "
        "built-in name\n"
        "                     (--list-populations) or a spec-file path "
        "ending in .json.\n"
        "                     Identity-bearing: stores/diffs refuse to "
        "mix populations.\n"
        "                     exit: 3 missing spec file, 4 "
        "malformed/invalid spec\n"
        "  --warm             one warmed driver per cell (sessions of a "
        "cell run in order)\n"
        "  --corpus=DIR       replay traces from a recorded corpus "
        "(see pes_corpus) instead\n"
        "                     of synthesizing; reports stay "
        "byte-identical to live synthesis\n"
        "  --no-trace-share   synthesize per job instead of sharing each "
        "(device, app, user)\n"
        "                     trace across schedulers (slower; identical "
        "reports)\n"
        "  --trace-cache-cap=N  LRU-bound the shared trace cache to N "
        "resident traces\n"
        "                     (0 = unbounded; eviction never changes "
        "report bytes)\n"
        "  --results-dir=DIR  persist per-session results into a .psum "
        "result store,\n"
        "                     checkpointing as the sweep runs; reports "
        "reduce from the store\n"
        "  --resume           skip sessions already persisted in "
        "--results-dir\n"
        "  --shard=K/N        execute only shard K of N (0-based); run "
        "all N shards\n"
        "                     (any machines), then `pes_fleet merge`\n"
        "  --checkpoint-every=N  sessions buffered per checkpoint flush "
        "[1024]\n"
        "  --out=FILE         write the JSON report\n"
        "  --csv=FILE         write the CSV report\n"
        "  --list-apps        print every known application profile and "
        "exit\n"
        "  --list-devices     print every known device model and exit\n"
        "  --list-populations print every built-in mixture population "
        "and exit\n"
        "  --quiet            suppress progress chatter\n"
        "  --help             this text\n"
        "\n"
        "Observability (accepted by the default sweep — also spellable "
        "`pes_fleet run` —\n"
        "and by the stress and merge verbs; reports stay byte-identical "
        "with these on\n"
        "or off):\n"
        "  --telemetry-out=FILE  write a versioned RunTelemetry JSON "
        "summary\n"
        "                     (sessions/sec, events/sec, per-stage wall "
        "time, cache/\n"
        "                     pool/checkpoint traffic). stress writes "
        "one per severity\n"
        "                     (FILE.sev-<tag>.json) plus the grid "
        "rollup at FILE\n"
        "  --trace-out=FILE   write Chrome trace-event JSON of the "
        "runner pipeline\n"
        "                     (open in chrome://tracing or "
        "https://ui.perfetto.dev)\n"
        "  --logical-clock    stamp trace events with virtual time "
        "(monotone counter):\n"
        "                     deterministic trace structure; wall-"
        "derived telemetry\n"
        "                     fields are zeroed\n"
        "  --progress         throttled completed/planned sessions "
        "line on stderr\n"
        "  --log-level=LVL    stderr verbosity: debug, info, warn, "
        "error (default:\n"
        "                     PES_LOG, else quiet)\n"
        "\n"
        "Verbs:\n"
        "  pes_fleet merge --into=DIR --from=DIR1,DIR2,... "
        "[--out=FILE] [--csv=FILE] [--quiet]\n"
        "                     merge shard result stores (same sweep) "
        "into one store and\n"
        "                     write its reports — byte-identical to a "
        "single whole run.\n"
        "                     exit: 0 clean, 3 missing part files, 4 "
        "corrupt stores\n"
        "  pes_fleet stress --family=NAME | --scenario-spec=FILE\n"
        "                     [--severities=LIST] [--scenario-seed=S] "
        "[--out=FILE]\n"
        "                     [--csv=FILE] [--reports-dir=DIR] "
        "[--results-dir=DIR]\n"
        "                     [--resume] [--shard=K/N] "
        "[--list-families] [sweep flags]\n"
        "                     sweep one stress family over a severity "
        "grid (default\n"
        "                     0,0.25,0.5,0.75,1) and reduce the per-"
        "severity sweeps into\n"
        "                     per-scheduler robustness curves "
        "(JSON/CSV, byte-identical\n"
        "                     for any --threads and across shard/"
        "resume). --results-dir\n"
        "                     persists one result store per severity "
        "(sev-<s> subdirs);\n"
        "                     --reports-dir writes one fleet report "
        "JSON per severity.\n"
        "                     sweep flags: --schedulers --apps "
        "--devices --users --seed\n"
        "                     --eval-population --warm --threads "
        "--corpus and the\n"
        "                     persistence knobs above.\n"
        "                     exit: 0 clean, 1 run problems, 3 missing "
        "spec file,\n"
        "                     4 malformed/invalid spec or severity "
        "grid\n"
        "  pes_fleet work --coordinator=DIR [--worker=ID] "
        "[--threads=N]\n"
        "                     [--max-ranges=N] [--idle-timeout-ms=MS] "
        "[--quiet]\n"
        "                     claim job-range leases from a "
        "pes_coordinator queue and\n"
        "                     execute them into the sweep's shared "
        "result store,\n"
        "                     heartbeating while running. Run any "
        "number of workers\n"
        "                     concurrently (and kill them freely): "
        "expired leases are\n"
        "                     reissued and the reduced report stays "
        "byte-identical to a\n"
        "                     whole single-process run. exit: 0 queue "
        "drained, 1 run\n"
        "                     problems, 2 starved with the sweep "
        "incomplete\n"
        "  pes_fleet diff BASE TEST [--exact] [--tolerance=REL] "
        "[--abs-tolerance=ABS]\n"
        "                     [--metric=LIST] [--tolerance-file=FILE] "
        "[--out=FILE] [--quiet]\n"
        "                     compare two runs cell-by-cell. BASE/TEST "
        "are result-store\n"
        "                     directories or report JSON/CSV files, in "
        "any combination.\n"
        "                     --exact gates bit-identical determinism; "
        "otherwise metrics\n"
        "                     pass within --tolerance (relative, "
        "default 0.01) or\n"
        "                     --abs-tolerance (default 1e-9). --out "
        "writes a machine-\n"
        "                     readable diff JSON.\n"
        "                     exit: 0 within tolerance, 2 drift "
        "(regressed/improved/\n"
        "                     missing/extra cells), 3 missing inputs, "
        "4 corrupt or\n"
        "                     incomparable inputs.\n"
        "                     --tolerance-file=FILE applies calibrated "
        "per-metric bands\n"
        "                     (see --calibrate) instead of the global "
        "knobs\n"
        "  pes_fleet diff --calibrate=N REP1 ... REPN [--sigmas=K]\n"
        "                     [--tolerance-out=FILE]\n"
        "                     derive per-metric tolerances from N "
        "replicate runs of the\n"
        "                     same sweep: each metric's band is K "
        "(default 3) standard\n"
        "                     deviations of its worst per-cell spread. "
        "The emitted JSON\n"
        "                     is consumed by `diff --tolerance-file` "
        "and `pes_perf gate\n"
        "                     --tolerance-file` (one calibration, both "
        "gates)\n";
}

bool
flagValue(const std::string &arg, const std::string &name,
          std::string &out)
{
    const std::string prefix = "--" + name + "=";
    if (!startsWith(arg, prefix))
        return false;
    out = arg.substr(prefix.size());
    return true;
}

long
parseLong(const std::string &value, const std::string &flag)
{
    long long v;
    fatal_if(!parseInt64(value, v), "bad value '%s' for --%s",
             value.c_str(), flag.c_str());
    return static_cast<long>(v);
}

uint64_t
parseSeed(const std::string &value)
{
    uint64_t v;
    fatal_if(!parseUint64(value, v), "bad value '%s' for --seed",
             value.c_str());
    return v;
}

/** --list-apps: the discovery view of the app registry (incl. extras). */
int
listApps()
{
    Table table({"app", "set", "pages", "temp", "think(s)",
                 "load_scale", "render_scale"});
    const auto row = [&](const AppProfile &p, const char *set) {
        table.beginRow()
            .cell(p.name)
            .cell(std::string(set))
            .cell(static_cast<long>(p.numPages))
            .cell(p.behaviorTemp, 2)
            .cell(p.thinkMedianMs / 1000.0, 1)
            .cell(p.loadWorkScale, 2)
            .cell(p.renderScale, 2);
    };
    for (const AppProfile &p : appRegistry())
        row(p, p.seen ? "seen" : "unseen");
    for (const AppProfile &p : extraApps())
        row(p, "extra");
    table.print(std::cout);
    std::cout << "groups: seen (" << seenApps().size() << "), unseen ("
              << unseenApps().size() << "), all ("
              << appRegistry().size() << "), extra ("
              << extraApps().size() << ")\n";
    return 0;
}

/** --list-devices: every platform parseDeviceList accepts. */
int
listDevices()
{
    Table table({"device", "aliases", "platform"});
    for (const DeviceInfo &info : deviceRegistry()) {
        table.beginRow()
            .cell(info.cliName)
            .cell(join(info.aliases, ", "))
            .cell(info.platform.name());
    }
    table.print(std::cout);
    return 0;
}

/** --list-populations: the discovery view of the mixture registry. */
int
listPopulations()
{
    Table table({"population", "cohorts", "mixture"});
    for (const PopulationSpec &spec : populationRegistry()) {
        std::vector<std::string> parts;
        for (const CohortSpec &c : spec.cohorts)
            parts.push_back(c.name + ":" + formatDouble(c.weight, 2));
        table.beginRow()
            .cell(spec.name)
            .cell(static_cast<long>(spec.cohorts.size()))
            .cell(join(parts, " "));
    }
    table.print(std::cout);
    std::cout << "or bring your own: --population=FILE.json (JSON "
                 "mixture spec; see DESIGN.md)\n";
    return 0;
}

/**
 * Resolve a `--population=SPEC` flag into @p config (the spec itself
 * lands in @p holder, which must outlive the runner — the config only
 * borrows it). Prints classified diagnostics and returns the integrity
 * exit code on failure, 0 on success.
 */
int
applyPopulationFlag(const std::string &ref,
                    std::optional<PopulationSpec> &holder,
                    FleetConfig &config)
{
    fatal_if(config.seedMode == SeedMode::Evaluation,
             "--population cannot be combined with --eval-population "
             "(the evaluation seeds are a fixed cohort)");
    std::vector<IntegrityProblem> problems;
    holder = resolvePopulation(ref, problems);
    if (!holder) {
        for (const IntegrityProblem &p : problems)
            std::cerr << "FAIL " << p.message << "\n";
        return integrityExitCode(problems);
    }
    config.population = &*holder;
    config.populationTag = populationTag(*holder);
    config.populationDigest = populationDigest(*holder);
    return 0;
}

/** Validate @p store; prints problems and returns the exit code (0 ok). */
int
validateStore(const ResultStore &store, bool quiet)
{
    std::vector<StoreProblem> problems;
    if (store.validate(problems))
        return 0;
    if (!quiet) {
        for (const StoreProblem &p : problems)
            std::cerr << "FAIL " << store.dir() << ": " << p.message
                      << "\n";
    }
    return integrityExitCode(problems);
}

/** Write the JSON/CSV reports of @p report (shared by sweep and merge). */
void
writeReports(const FleetReport &report, const std::string &out_path,
             const std::string &csv_path)
{
    if (!out_path.empty()) {
        std::ofstream os(out_path);
        fatal_if(!os, "cannot open '%s'", out_path.c_str());
        JsonReporter::write(report, os);
        std::cout << "[json: " << out_path << "]\n";
    }
    if (!csv_path.empty()) {
        std::ofstream os(csv_path);
        fatal_if(!os, "cannot open '%s'", csv_path.c_str());
        CsvReporter::write(report, os);
        std::cout << "[csv: " << csv_path << "]\n";
    }
}

// ------------------------------------------------------- observability

/**
 * Telemetry/trace/logging flags shared by the run, stress and merge
 * verbs. Arming any of them never changes report bytes — telemetry is
 * strictly read-only on the runner (locked by tests and CI).
 */
struct ObsOptions
{
    std::string telemetryOut;
    std::string traceOut;
    bool logicalClock = false;
    bool progress = false;
    std::string logLevel;

    /** Consume @p arg; true when it was an observability flag. */
    bool consume(const std::string &arg)
    {
        std::string value;
        if (flagValue(arg, "telemetry-out", value)) {
            telemetryOut = value;
        } else if (flagValue(arg, "trace-out", value)) {
            traceOut = value;
        } else if (arg == "--logical-clock") {
            logicalClock = true;
        } else if (arg == "--progress") {
            progress = true;
        } else if (flagValue(arg, "log-level", value)) {
            logLevel = value;
        } else {
            return false;
        }
        return true;
    }

    /** Whether any telemetry artifact was requested. */
    bool wantsTelemetry() const
    {
        return !telemetryOut.empty() || !traceOut.empty();
    }

    /**
     * Resolve the stderr discipline: --log-level wins, then the
     * PES_LOG environment, then the verb's historical default
     * (@p default_quiet: sweeps silence library chatter).
     */
    void applyLogging(bool default_quiet) const
    {
        if (!logLevel.empty()) {
            LogLevel level;
            fatal_if(!parseLogLevel(logLevel, level),
                     "bad value '%s' for --log-level "
                     "(debug|info|warn|error)",
                     logLevel.c_str());
            setLogLevel(level);
        } else if (default_quiet && !std::getenv("PES_LOG")) {
            setQuiet(true);
        }
    }

    /**
     * Build the trace sink when asked. --logical-clock alone (no
     * --trace-out) still builds one: the runner consults the sink's
     * clock to zero wall-derived telemetry fields, making
     * --telemetry-out byte-reproducible too.
     */
    std::optional<TraceEventSink> makeTraceSink() const
    {
        if (traceOut.empty() && !logicalClock)
            return std::nullopt;
        return std::optional<TraceEventSink>(
            std::in_place, logicalClock ? TraceEventSink::Clock::Logical
                                        : TraceEventSink::Clock::Wall);
    }
};

/** Write the buffered trace-event JSON (fatal on I/O failure). */
void
writeTraceFile(const TraceEventSink &sink, const std::string &path)
{
    std::ofstream os(path);
    fatal_if(!os, "cannot open '%s'", path.c_str());
    sink.write(os);
    std::cout << "[trace: " << path << "]\n";
}

/** Write one RunTelemetry summary (fatal on I/O failure). */
void
writeTelemetryFile(const RunTelemetry &t, const std::string &path)
{
    std::ofstream os(path);
    fatal_if(!os, "cannot open '%s'", path.c_str());
    writeRunTelemetryJson(t, os);
    std::cout << "[telemetry: " << path << "]\n";
}

/** Per-severity sibling of @p base: stem + ".sev-<tag>" + extension. */
std::string
severityPath(const std::string &base, const std::string &tag)
{
    const size_t dot = base.rfind('.');
    const size_t slash = base.find_last_of("/\\");
    const bool has_ext =
        dot != std::string::npos &&
        (slash == std::string::npos || dot > slash);
    const std::string stem = has_ext ? base.substr(0, dot) : base;
    const std::string ext = has_ext ? base.substr(dot) : ".json";
    return stem + ".sev-" + tag + ext;
}

// -------------------------------------------------------------- merge

int
cmdMerge(int argc, char **argv)
{
    std::string into, out_path, csv_path;
    std::vector<std::string> from;
    bool quiet = false;
    ObsOptions obs;

    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        std::string value;
        if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (obs.consume(arg)) {
            // observability flags (shared across verbs)
        } else if (flagValue(arg, "into", value)) {
            into = value;
        } else if (flagValue(arg, "from", value)) {
            for (const std::string &raw : split(value, ',')) {
                const std::string dir = trim(raw);
                if (!dir.empty())
                    from.push_back(dir);
            }
        } else if (flagValue(arg, "out", value)) {
            out_path = value;
        } else if (flagValue(arg, "csv", value)) {
            csv_path = value;
        } else {
            std::cerr << "merge: unknown option '" << arg << "'\n\n";
            usage();
            return 2;
        }
    }
    fatal_if(into.empty(), "merge: --into (destination store) is "
                           "required");
    fatal_if(from.empty(), "merge: --from (source stores) is required");
    obs.applyLogging(false);

    std::optional<TraceEventSink> trace_sink = obs.makeTraceSink();
    TraceEventSink *tsink = trace_sink ? &*trace_sink : nullptr;
    if (tsink)
        tsink->nameLane(0, "merge");
    TelemetryRegistry telemetry;
    telemetry.setEnabled(obs.wantsTelemetry());
    RunTelemetry mt;
    mt.tool = "merge";
    mt.threads = 1;
    mt.logicalClock = obs.logicalClock;

    // Open and validate every source before touching the destination:
    // a corrupt shard must fail the merge, not poison the merged store.
    const auto validate_start = std::chrono::steady_clock::now();
    std::vector<ResultStore> sources;
    int worst = 0;
    {
        TraceSpan span(tsink, 0, "validate", "stage");
        for (const std::string &dir : from) {
            std::string error;
            auto store = ResultStore::open(dir, &error);
            fatal_if(!store, "merge: cannot open '%s': %s", dir.c_str(),
                     error.c_str());
            worst = std::max(worst, validateStore(*store, quiet));
            sources.push_back(std::move(*store));
        }
    }
    const double validate_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - validate_start)
            .count();
    if (worst != 0)
        return worst;

    std::string error;
    const auto merge_start = std::chrono::steady_clock::now();
    std::optional<ResultStore> merged;
    {
        TraceSpan span(tsink, 0, "merge", "stage");
        merged = ResultStore::create(into, sources.front().sweep(),
                                     &error);
        fatal_if(!merged, "merge: cannot create '%s': %s", into.c_str(),
                 error.c_str());
        for (const ResultStore &src : sources) {
            fatal_if(!merged->mergeFrom(src, &error), "merge: %s",
                     error.c_str());
        }
    }
    const double merge_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - merge_start)
            .count();

    const auto reduce_start = std::chrono::steady_clock::now();
    StoreReduction reduction;
    {
        TraceSpan span(tsink, 0, "reduce", "stage");
        fatal_if(!reduceStore(*merged, reduction, &error), "merge: %s",
                 error.c_str());
    }
    const double reduce_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - reduce_start)
            .count();

    // The merge verb's telemetry summary: validate maps to the plan
    // slot, part copying to execute, reduction to reduce.
    if (telemetry.enabled()) {
        telemetry.count("merge.sources",
                        static_cast<uint64_t>(sources.size()));
        telemetry.count("merge.parts",
                        static_cast<uint64_t>(merged->parts().size()));
        telemetry.count("merge.records", merged->recordCount());
        telemetry.count("merge.duplicates", reduction.duplicates);
        mt.counters = telemetry.snapshot();
        mt.sessions = reduction.sessions;
        mt.events = static_cast<uint64_t>(reduction.metrics.events());
        mt.scenario = merged->sweep().scenario;
        if (!mt.logicalClock) {
            mt.planMs = validate_ms;
            mt.executeMs = merge_ms;
            mt.reduceMs = reduce_ms;
            mt.totalMs = validate_ms + merge_ms + reduce_ms;
            mt.recomputeRates();
        }
        if (!obs.telemetryOut.empty())
            writeTelemetryFile(mt, obs.telemetryOut);
    }
    if (tsink && !obs.traceOut.empty())
        writeTraceFile(*tsink, obs.traceOut);

    if (!reduction.problems.empty()) {
        for (const std::string &p : reduction.problems)
            std::cerr << "FAIL " << p << "\n";
        return kExitCorrupt;
    }
    if (!quiet) {
        std::cout << "merged " << sources.size() << " stores into "
                  << into << ": " << reduction.sessions << " sessions";
        if (reduction.duplicates > 0)
            std::cout << " (" << reduction.duplicates
                      << " duplicate re-runs deduplicated)";
        std::cout << "\n";
        if (reduction.missing > 0) {
            std::cout << "note: " << reduction.missing << " of "
                      << merged->sweep().expectedSessions()
                      << " expected sessions are not in the merged "
                         "store (partial sweep)\n";
        }
    }
    writeReports(makeStoreReport(*merged, reduction.metrics), out_path,
                 csv_path);
    return 0;
}

// --------------------------------------------------------------- diff

int
cmdDiff(int argc, char **argv)
{
    DiffOptions options;
    std::vector<std::string> paths;
    std::string out_path;
    std::string tolerance_file;
    std::string tolerance_out;
    int calibrate = 0;
    double sigmas = 3.0;
    bool quiet = false;

    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        std::string value;
        if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--exact") {
            options.exact = true;
        } else if (flagValue(arg, "calibrate", value)) {
            calibrate = static_cast<int>(parseLong(value, "calibrate"));
            fatal_if(calibrate < 2,
                     "diff: --calibrate needs at least 2 replicates");
        } else if (flagValue(arg, "sigmas", value)) {
            fatal_if(!parseDouble(value, sigmas) || sigmas <= 0.0,
                     "bad value '%s' for --sigmas", value.c_str());
        } else if (flagValue(arg, "tolerance-file", value)) {
            tolerance_file = value;
        } else if (flagValue(arg, "tolerance-out", value)) {
            tolerance_out = value;
        } else if (flagValue(arg, "tolerance", value)) {
            fatal_if(!parseDouble(value, options.relTolerance) ||
                         options.relTolerance < 0.0,
                     "bad value '%s' for --tolerance", value.c_str());
        } else if (flagValue(arg, "abs-tolerance", value)) {
            fatal_if(!parseDouble(value, options.absTolerance) ||
                         options.absTolerance < 0.0,
                     "bad value '%s' for --abs-tolerance",
                     value.c_str());
        } else if (flagValue(arg, "metric", value)) {
            for (const std::string &raw : split(value, ',')) {
                const std::string metric = trim(raw);
                if (!metric.empty())
                    options.metrics.push_back(metric);
            }
        } else if (flagValue(arg, "out", value)) {
            out_path = value;
        } else if (startsWith(arg, "--")) {
            std::cerr << "diff: unknown option '" << arg << "'\n\n";
            usage();
            return 1;
        } else {
            paths.push_back(arg);
        }
    }
    // Calibration mode: N replicate inputs -> a tolerance JSON that
    // both this verb (--tolerance-file) and `pes_perf gate` consume.
    if (calibrate > 0) {
        fatal_if(static_cast<int>(paths.size()) != calibrate,
                 "diff: --calibrate=%d expects exactly %d inputs, "
                 "got %d",
                 calibrate, calibrate, static_cast<int>(paths.size()));
        std::vector<FleetReport> replicates;
        std::vector<IntegrityProblem> problems;
        for (const std::string &path : paths) {
            DiffInput input = loadDiffInput(path);
            if (input.report)
                replicates.push_back(std::move(*input.report));
            problems.insert(problems.end(), input.problems.begin(),
                            input.problems.end());
        }
        if (!problems.empty()) {
            for (const IntegrityProblem &p : problems)
                std::cerr << "FAIL " << p.message << "\n";
            return integrityExitCode(problems);
        }
        std::vector<std::string> notes;
        const ToleranceSpec spec =
            calibrateTolerances(replicates, sigmas, &notes);
        for (const std::string &note : notes)
            std::cerr << note << "\n";
        const std::string json = toleranceSpecToJson(spec);
        if (!tolerance_out.empty()) {
            std::ofstream os(tolerance_out);
            fatal_if(!os, "cannot open '%s'", tolerance_out.c_str());
            os << json;
        } else {
            std::cout << json;
        }
        if (!quiet) {
            std::cerr << "calibrated " << spec.metrics.size()
                      << " metric band(s) from " << calibrate
                      << " replicates at " << sigmas << " sigma\n";
        }
        return 0;
    }

    ToleranceSpec calibrated;
    if (!tolerance_file.empty()) {
        std::string error;
        auto spec = loadToleranceSpec(tolerance_file, &error);
        fatal_if(!spec, "diff: %s", error.c_str());
        calibrated = std::move(*spec);
        options.tolerance = &calibrated;
    }

    fatal_if(paths.size() != 2,
             "diff: expected exactly two inputs (BASE TEST), got %d",
             static_cast<int>(paths.size()));

    // Load both sides; any load problem gates before comparison.
    const DiffInput base = loadDiffInput(paths[0]);
    const DiffInput test = loadDiffInput(paths[1]);
    if (!base.report || !test.report) {
        std::vector<IntegrityProblem> problems = base.problems;
        problems.insert(problems.end(), test.problems.begin(),
                        test.problems.end());
        for (const IntegrityProblem &p : problems)
            std::cerr << "FAIL " << p.message << "\n";
        return integrityExitCode(problems);
    }

    const DiffSummary summary =
        diffReports(*base.report, *test.report, options);
    if (!out_path.empty()) {
        std::ofstream os(out_path);
        fatal_if(!os, "cannot open '%s'", out_path.c_str());
        writeDiffJson(summary, options, os);
    }
    if (!quiet)
        printDiffSummary(summary, std::cout);
    // Name every drifted cell/metric on stderr even under --quiet:
    // a failing CI gate must say WHAT drifted in its log.
    for (const CellDiff &cell : summary.cells) {
        if (cell.outcome == DiffOutcome::Identical ||
            cell.outcome == DiffOutcome::WithinTolerance)
            continue;
        const std::string where = "(" + cell.device + ", " + cell.app +
            ", " + cell.scheduler + ")";
        if (cell.metrics.empty()) {
            std::cerr << "DRIFT " << where << ": cell "
                      << diffOutcomeName(cell.outcome) << "\n";
            continue;
        }
        for (const MetricDelta &d : cell.metrics) {
            if (d.outcome == DiffOutcome::WithinTolerance)
                continue;
            std::cerr << "DRIFT " << where << " " << d.metric << ": "
                      << diffOutcomeName(d.outcome) << " "
                      << csvNum(d.base) << " -> " << csvNum(d.test)
                      << "\n";
        }
    }
    for (const IntegrityProblem &p : summary.problems)
        std::cerr << "FAIL " << p.message << "\n";
    return diffExitCode(summary);
}

// --------------------------------------------------------------- work

/**
 * Coordinator worker: claim ranges from a lease queue, execute each as
 * an external-range fleet run into the shared result store, heartbeat
 * while running, and publish an observed sessions/sec estimate for the
 * coordinator's straggler-steal rule. Exits 0 when the queue drains.
 */
int
cmdWork(int argc, char **argv)
{
    std::string queue_dir;
    std::string worker_id;
    long threads = 0;
    long max_ranges = 0;
    long stall_ms = 0;
    long idle_timeout_ms = 120000;
    bool quiet = false;
    ObsOptions obs;

    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        std::string value;
        if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (obs.consume(arg)) {
            // observability flags (shared across verbs)
        } else if (flagValue(arg, "coordinator", value)) {
            queue_dir = value;
        } else if (flagValue(arg, "worker", value)) {
            worker_id = value;
        } else if (flagValue(arg, "threads", value)) {
            threads = parseLong(value, "threads");
            fatal_if(threads < 1 || threads > 4096,
                     "--threads must be in [1, 4096]");
        } else if (flagValue(arg, "max-ranges", value)) {
            max_ranges = parseLong(value, "max-ranges");
        } else if (flagValue(arg, "stall-after-claim-ms", value)) {
            // Chaos/CI hook: hold the first claimed lease this long
            // before executing it — a deterministic window to SIGKILL
            // the worker "mid-lease" and exercise expiry + reissue.
            stall_ms = parseLong(value, "stall-after-claim-ms");
        } else if (flagValue(arg, "idle-timeout-ms", value)) {
            idle_timeout_ms = parseLong(value, "idle-timeout-ms");
        } else {
            std::cerr << "work: unknown option '" << arg << "'\n\n";
            usage();
            return 1;
        }
    }
    fatal_if(queue_dir.empty(),
             "work: --coordinator=DIR (the lease queue) is required");
    obs.applyLogging(true);
    if (worker_id.empty())
        worker_id = "w" + std::to_string(static_cast<long>(::getpid()));

    std::string error;
    auto queue = LeaseQueue::open(queue_dir, &error);
    fatal_if(!queue, "work: %s", error.c_str());

    // Rebuild the sweep from the queue's stored identity; the store
    // create() below re-verifies it against the manifest, so a worker
    // from an incompatible build fails loudly before claiming.
    FleetConfig base = configOf(queue->plan());
    base.threads = threads > 0 ? static_cast<int>(threads)
                               : Experiment::defaultSweepThreads();
    auto store = ResultStore::create(queue->plan().resultsDir,
                                     SweepSpec::fromConfig(base),
                                     &error);
    fatal_if(!store, "work: cannot open results store: %s",
             error.c_str());

    std::optional<TraceEventSink> trace_sink = obs.makeTraceSink();
    RunTelemetry work_rt;

    uint64_t ranges_done = 0;
    uint64_t ranges_fenced = 0;
    bool stalled_once = false;
    int64_t idle_since = wallClockMs();

    for (;;) {
        std::vector<Lease> leases;
        fatal_if(!queue->loadLeases(&leases, &error), "work: %s",
                 error.c_str());
        uint64_t done = 0;
        const Lease *claimable = nullptr;
        for (const Lease &lease : leases) {
            if (lease.state == LeaseState::Done)
                ++done;
            else if (lease.state == LeaseState::Open && !claimable)
                claimable = &lease;
        }
        if (done == leases.size())
            break;
        if (!claimable) {
            // Everything pending is leased to peers; their leases
            // either complete or the coordinator expires them back to
            // open. Idle-wait, bounded so a dead coordinator cannot
            // hang the worker forever.
            if (wallClockMs() - idle_since > idle_timeout_ms) {
                std::cerr << "work: no claimable range for "
                          << idle_timeout_ms
                          << " ms and the sweep is not done (is "
                             "pes_coordinator run alive?)\n";
                return 2;
            }
            std::this_thread::sleep_for(
                std::chrono::milliseconds(40));
            continue;
        }

        Lease mine;
        if (!queue->tryClaim(*claimable, worker_id, wallClockMs(),
                             &mine, &error)) {
            fatal_if(!error.empty(), "work: %s", error.c_str());
            continue; // lost the race; rescan
        }
        idle_since = wallClockMs();
        if (stall_ms > 0 && !stalled_once) {
            stalled_once = true;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(stall_ms));
        }

        // Heartbeat while the range executes. The runner has no
        // cooperative yield points, so renewal rides a side thread;
        // losing the lease mid-run only matters at publish time, where
        // the store fence (below) refuses the checkpoint.
        std::atomic<bool> hb_stop{false};
        std::thread hb([&] {
            const int64_t period =
                std::max<int64_t>(queue->plan().leaseMs / 3, 50);
            while (!hb_stop.load()) {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(period));
                if (hb_stop.load())
                    break;
                std::string hb_error;
                queue->heartbeat(mine, wallClockMs(), &hb_error);
            }
        });

        store->setPublishFence([&](std::string *why) {
            if (queue->stillOwned(mine))
                return true;
            if (why)
                *why = "range " + std::to_string(mine.seq) +
                       " epoch " + std::to_string(mine.epoch) +
                       " no longer held by " + worker_id;
            return false;
        });

        FleetConfig config = base;
        config.externalRanges = {JobRange{mine.first, mine.count}};
        config.persistLabel =
            worker_id + "-r" + std::to_string(mine.seq) + "-e" +
            std::to_string(mine.epoch);
        config.resultStore = &*store;
        TelemetryRegistry telemetry;
        telemetry.setEnabled(true);
        config.telemetry = &telemetry;
        if (trace_sink)
            config.traceSink = &*trace_sink;

        FleetRunner runner(std::move(config));
        FleetOutcome outcome = runner.run();

        hb_stop.store(true);
        hb.join();
        store->setPublishFence(nullptr);

        bool fenced = false;
        for (const std::string &d : outcome.diagnostics)
            fenced = fenced ||
                d.find("lease fenced") != std::string::npos;
        if (fenced) {
            // The lease was reissued under us: drop the range without
            // completing it — the new holder re-runs it, and whatever
            // we already checkpointed deduplicates at reduction.
            ++ranges_fenced;
            if (!quiet) {
                std::cout << "[" << worker_id << ": range "
                          << mine.seq << " fenced (lease reissued); "
                          << "abandoning]\n";
            }
            continue;
        }
        if (!outcome.diagnostics.empty()) {
            for (const std::string &d : outcome.diagnostics)
                std::cerr << "FAIL " << d << "\n";
            return 1;
        }

        foldRunTelemetry(work_rt, makeRunTelemetry(runner.config(),
                                                   outcome));
        if (!queue->complete(mine, &error)) {
            // Completed the work but lost the lease in the final
            // window — same as fenced: the re-run's records are
            // identical duplicates.
            ++ranges_fenced;
            continue;
        }
        ++ranges_done;
        if (!quiet) {
            std::cout << "[" << worker_id << ": range " << mine.seq
                      << " (" << mine.count << " jobs) done]\n";
        }

        // Publish the observed rate for the straggler-steal rule.
        WorkerRate rate;
        rate.worker = worker_id;
        rate.sessions = work_rt.sessions;
        rate.busyMs = work_rt.executeMs;
        rate.sessionsPerSec = work_rt.sessionsPerSec;
        rate.updatedMs = wallClockMs();
        std::string rate_error;
        if (!queue->writeWorkerRate(rate, &rate_error))
            warn("work: cannot publish rate: %s", rate_error.c_str());

        if (max_ranges > 0 &&
            ranges_done >= static_cast<uint64_t>(max_ranges))
            break;
    }

    if (!quiet) {
        std::cout << worker_id << ": " << ranges_done
                  << " range(s) done, " << work_rt.sessions
                  << " sessions";
        if (ranges_fenced > 0)
            std::cout << ", " << ranges_fenced << " fenced";
        std::cout << "\n";
    }
    if (obs.wantsTelemetry() && !obs.telemetryOut.empty()) {
        work_rt.tool = "work";
        writeTelemetryFile(work_rt, obs.telemetryOut);
    }
    if (trace_sink && !obs.traceOut.empty())
        writeTraceFile(*trace_sink, obs.traceOut);
    return 0;
}

// ------------------------------------------------------------- stress

/** --list-families: the discovery view of the scenario registry. */
int
listFamilies()
{
    Table table({"family", "ops", "description"});
    for (const ScenarioFamily &family : scenarioRegistry()) {
        std::vector<std::string> ops;
        for (const ScenarioOp &op : family.ops)
            ops.push_back(scenarioOpName(op.kind));
        table.beginRow()
            .cell(family.name)
            .cell(join(ops, "+"))
            .cell(family.description);
    }
    table.print(std::cout);
    std::cout << "or bring your own: --scenario-spec=FILE (JSON "
                 "pipeline over the same ops)\n";
    return 0;
}

/** Print classified problems and return their gateable exit code. */
int
failProblems(const std::vector<IntegrityProblem> &problems)
{
    for (const IntegrityProblem &p : problems)
        std::cerr << "FAIL " << p.message << "\n";
    return integrityExitCode(problems);
}

int
cmdStress(int argc, char **argv)
{
    FleetConfig base;
    base.schedulers = {SchedulerKind::Pes, SchedulerKind::Ebs};
    base.apps = parseAppList("cnn,amazon,social_feed");
    base.users = 100;
    base.threads = Experiment::defaultSweepThreads();

    std::string family_name, spec_path, severities_spec =
        "0,0.25,0.5,0.75,1";
    uint64_t scenario_seed = kDefaultScenarioSeed;
    std::string out_path, csv_path, reports_dir, results_dir, corpus_dir;
    bool resume = false;
    bool quiet = false;
    ObsOptions obs;

    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        std::string value;
        if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (arg == "--list-families") {
            return listFamilies();
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (obs.consume(arg)) {
            // observability flags (shared across verbs)
        } else if (arg == "--warm") {
            base.warmDrivers = true;
        } else if (arg == "--eval-population") {
            base.seedMode = SeedMode::Evaluation;
        } else if (arg == "--resume") {
            resume = true;
        } else if (arg == "--no-trace-share") {
            base.shareTraces = false;
        } else if (flagValue(arg, "family", value)) {
            family_name = value;
        } else if (flagValue(arg, "scenario-spec", value)) {
            spec_path = value;
        } else if (flagValue(arg, "severities", value)) {
            severities_spec = value;
        } else if (flagValue(arg, "scenario-seed", value)) {
            scenario_seed = parseSeed(value);
        } else if (flagValue(arg, "schedulers", value)) {
            base.schedulers = parseSchedulerList(value);
        } else if (flagValue(arg, "apps", value)) {
            base.apps = parseAppList(value);
        } else if (flagValue(arg, "devices", value)) {
            base.devices = parseDeviceList(value);
        } else if (flagValue(arg, "users", value)) {
            const long users = parseLong(value, "users");
            fatal_if(users < 1 || users > 100000000,
                     "--users must be in [1, 1e8]");
            base.users = static_cast<int>(users);
        } else if (flagValue(arg, "threads", value)) {
            const long threads = parseLong(value, "threads");
            fatal_if(threads < 1 || threads > 4096,
                     "--threads must be in [1, 4096]");
            base.threads = static_cast<int>(threads);
        } else if (flagValue(arg, "seed", value)) {
            base.baseSeed = parseSeed(value);
        } else if (flagValue(arg, "corpus", value)) {
            corpus_dir = value;
        } else if (flagValue(arg, "results-dir", value)) {
            results_dir = value;
        } else if (flagValue(arg, "shard", value)) {
            const size_t slash = value.find('/');
            fatal_if(slash == std::string::npos,
                     "--shard expects K/N (e.g. 0/4), got '%s'",
                     value.c_str());
            const long k = parseLong(value.substr(0, slash), "shard");
            const long n = parseLong(value.substr(slash + 1), "shard");
            fatal_if(n < 1 || n > 1000000 || k < 0 || k >= n,
                     "--shard=K/N needs 0 <= K < N, got '%s'",
                     value.c_str());
            base.shardIndex = static_cast<int>(k);
            base.shardCount = static_cast<int>(n);
        } else if (flagValue(arg, "checkpoint-every", value)) {
            const long every = parseLong(value, "checkpoint-every");
            fatal_if(every < 0 || every > 100000000,
                     "--checkpoint-every must be in [0, 1e8]");
            base.checkpointEvery = static_cast<int>(every);
        } else if (flagValue(arg, "trace-cache-cap", value)) {
            const long cap = parseLong(value, "trace-cache-cap");
            fatal_if(cap < 0, "--trace-cache-cap must be >= 0");
            base.traceCacheCap = static_cast<size_t>(cap);
        } else if (flagValue(arg, "reports-dir", value)) {
            reports_dir = value;
        } else if (flagValue(arg, "out", value)) {
            out_path = value;
        } else if (flagValue(arg, "csv", value)) {
            csv_path = value;
        } else {
            std::cerr << "stress: unknown option '" << arg << "'\n\n";
            usage();
            return 1;
        }
    }
    fatal_if(family_name.empty() == spec_path.empty(),
             "stress: exactly one of --family / --scenario-spec is "
             "required (--list-families shows the registry)");
    fatal_if(resume && results_dir.empty(),
             "stress: --resume requires --results-dir");
    const bool sharded = base.shardCount > 1;
    fatal_if(sharded && results_dir.empty(),
             "stress: --shard requires --results-dir (shards meet "
             "again via `pes_fleet merge` per severity)");
    fatal_if(sharded && (!out_path.empty() || !csv_path.empty()),
             "stress: a single shard cannot emit curves; merge the "
             "severity stores (`pes_fleet merge`) and re-run stress "
             "with --results-dir + --resume to reduce them");

    // Resolve the family: registry name or user spec. Every spec
    // failure is classified (3 missing file, 4 malformed/invalid) so
    // CI can gate on the contract.
    ScenarioFamily family;
    std::vector<IntegrityProblem> problems;
    if (!spec_path.empty()) {
        const auto loaded = loadScenarioSpec(spec_path, problems);
        if (!loaded)
            return failProblems(problems);
        family = *loaded;
    } else {
        const ScenarioFamily *found = findScenarioFamily(family_name);
        if (!found) {
            std::vector<std::string> known;
            for (const ScenarioFamily &f : scenarioRegistry())
                known.push_back(f.name);
            problems.push_back(
                {IntegrityProblem::Kind::Mismatch,
                 "unknown scenario family '" + family_name + "' (" +
                     join(known, ", ") + ")"});
            return failProblems(problems);
        }
        family = *found;
    }

    const std::vector<double> severities =
        parseSeverityList(severities_spec, problems);
    // An unparseable severity token must gate, not silently shrink the
    // grid: makeScenarioPlan only inspects problems it appends itself.
    if (!problems.empty())
        return failProblems(problems);
    const auto plan =
        makeScenarioPlan(family, severities, scenario_seed, problems);
    if (!plan)
        return failProblems(problems);

    obs.applyLogging(true);
    std::optional<CorpusStore> corpus;
    if (!corpus_dir.empty()) {
        std::string error;
        corpus = CorpusStore::open(corpus_dir, &error);
        fatal_if(!corpus, "cannot open corpus: %s", error.c_str());
        base.corpus = &*corpus;
    }

    // One trace sink spans the whole grid (stage spans carry the
    // scenario tag); each severity gets its own registry so its
    // summary covers that severity alone, then folds into the rollup.
    std::optional<TraceEventSink> trace_sink = obs.makeTraceSink();
    RunTelemetry rollup;

    std::vector<ScenarioCell> grid = plan->expand(base);
    if (!quiet) {
        std::cout << "stress: family " << family.name << " x "
                  << grid.size() << " severities over "
                  << base.apps.size() << " apps x "
                  << base.schedulers.size() << " schedulers x "
                  << std::max<size_t>(base.devices.size(), 1)
                  << " devices x " << base.users << " users ("
                  << base.threads << " threads)\n";
        std::cout.flush();
    }

    std::vector<std::pair<double, FleetReport>> reports;
    int run_problems = 0;
    for (ScenarioCell &cell : grid) {
        std::optional<ResultStore> store;
        if (!results_dir.empty()) {
            const std::string dir =
                (std::filesystem::path(results_dir) /
                 ("sev-" + cell.severityTag))
                    .string();
            std::string error;
            store = ResultStore::create(
                dir, SweepSpec::fromConfig(cell.config), &error);
            fatal_if(!store, "cannot open results dir: %s",
                     error.c_str());
            cell.config.resultStore = &*store;
            cell.config.resume = resume;
        }
        TelemetryRegistry telemetry;
        telemetry.setEnabled(obs.wantsTelemetry());
        if (obs.wantsTelemetry())
            cell.config.telemetry = &telemetry;
        if (trace_sink)
            cell.config.traceSink = &*trace_sink;
        cell.config.progress = obs.progress;
        FleetRunner runner(std::move(cell.config));
        const FleetOutcome outcome = runner.run();
        for (const std::string &d : outcome.diagnostics) {
            std::cerr << "FAIL " << cell.scenario << ": " << d << "\n";
            ++run_problems;
        }
        if (obs.wantsTelemetry()) {
            RunTelemetry part = makeRunTelemetry(runner.config(),
                                                 outcome);
            part.tool = "stress";
            if (!obs.telemetryOut.empty())
                writeTelemetryFile(part,
                                   severityPath(obs.telemetryOut,
                                                cell.severityTag));
            foldRunTelemetry(rollup, part);
        }
        FleetReport report =
            makeFleetReport(runner.config(), outcome.metrics);
        if (!reports_dir.empty()) {
            std::error_code ec;
            std::filesystem::create_directories(reports_dir, ec);
            const std::string path =
                (std::filesystem::path(reports_dir) /
                 ("sev-" + cell.severityTag + ".json"))
                    .string();
            std::ofstream os(path);
            fatal_if(!os, "cannot open '%s'", path.c_str());
            JsonReporter::write(report, os);
        }
        if (!quiet) {
            std::cout << "  " << cell.scenario << ": "
                      << outcome.jobCount << " sessions in "
                      << formatDouble(outcome.wallMs / 1000.0, 2)
                      << " s\n";
            std::cout.flush();
        }
        reports.emplace_back(cell.severity, std::move(report));
    }
    // Grid-level artifacts: the folded rollup at the requested path
    // (per-severity summaries sit beside it) and one trace covering
    // every severity's pipeline.
    if (obs.wantsTelemetry() && !obs.telemetryOut.empty()) {
        rollup.tool = "stress";
        rollup.scenario = family.name;
        writeTelemetryFile(rollup, obs.telemetryOut);
    }
    if (trace_sink && !obs.traceOut.empty())
        writeTraceFile(*trace_sink, obs.traceOut);
    if (sharded) {
        if (!quiet) {
            std::cout << "shard " << base.shardIndex << "/"
                      << base.shardCount << " persisted under "
                      << results_dir << "; merge each sev-* store, "
                      "then `pes_fleet stress ... --results-dir="
                      "MERGED --resume` emits the curves\n";
        }
        return run_problems > 0 ? 1 : 0;
    }

    const auto robustness =
        makeRobustnessReport(family.name, std::move(reports), problems);
    if (!robustness)
        return failProblems(problems);

    // Human summary: the headline per-scheduler scores.
    Table table({"scheduler", "robustness", "worst_degradation"});
    for (const SchedulerRobustness &s : robustness->schedulers_summary) {
        table.beginRow()
            .cell(s.scheduler)
            .cell(s.score, 4)
            .cell(s.worstDegradation, 4);
    }
    table.print(std::cout);

    if (!out_path.empty()) {
        std::ofstream os(out_path);
        fatal_if(!os, "cannot open '%s'", out_path.c_str());
        writeRobustnessJson(*robustness, os);
        std::cout << "[curves json: " << out_path << "]\n";
    }
    if (!csv_path.empty()) {
        std::ofstream os(csv_path);
        fatal_if(!os, "cannot open '%s'", csv_path.c_str());
        writeRobustnessCsv(*robustness, os);
        std::cout << "[curves csv: " << csv_path << "]\n";
    }
    return run_problems > 0 ? 1 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc > 1 && argv[1] == std::string("merge"))
        return cmdMerge(argc, argv);
    if (argc > 1 && argv[1] == std::string("diff"))
        return cmdDiff(argc, argv);
    if (argc > 1 && argv[1] == std::string("stress"))
        return cmdStress(argc, argv);
    if (argc > 1 && argv[1] == std::string("work"))
        return cmdWork(argc, argv);
    // "run" is the default verb; accept it spelled out for symmetry
    // with merge/diff/stress.
    const int arg_start =
        (argc > 1 && argv[1] == std::string("run")) ? 2 : 1;

    FleetConfig config;
    config.schedulers = {SchedulerKind::Pes, SchedulerKind::Ebs};
    config.apps = parseAppList("cnn,amazon,social_feed");
    config.users = 100;
    config.threads = Experiment::defaultSweepThreads();

    std::string out_path;
    std::string csv_path;
    std::string corpus_dir;
    std::string results_dir;
    std::string population_ref;
    bool quiet = false;
    ObsOptions obs;

    for (int i = arg_start; i < argc; ++i) {
        const std::string arg = argv[i];
        std::string value;
        if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (arg == "--list-apps") {
            return listApps();
        } else if (arg == "--list-devices") {
            return listDevices();
        } else if (arg == "--list-populations") {
            return listPopulations();
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (obs.consume(arg)) {
            // observability flags (shared across verbs)
        } else if (arg == "--warm") {
            config.warmDrivers = true;
        } else if (arg == "--no-trace-share") {
            config.shareTraces = false;
        } else if (arg == "--resume") {
            config.resume = true;
        } else if (flagValue(arg, "results-dir", value)) {
            results_dir = value;
        } else if (flagValue(arg, "shard", value)) {
            const size_t slash = value.find('/');
            fatal_if(slash == std::string::npos,
                     "--shard expects K/N (e.g. 0/4), got '%s'",
                     value.c_str());
            const long k = parseLong(value.substr(0, slash), "shard");
            const long n = parseLong(value.substr(slash + 1), "shard");
            fatal_if(n < 1 || n > 1000000 || k < 0 || k >= n,
                     "--shard=K/N needs 0 <= K < N, got '%s'",
                     value.c_str());
            config.shardIndex = static_cast<int>(k);
            config.shardCount = static_cast<int>(n);
        } else if (flagValue(arg, "checkpoint-every", value)) {
            const long every = parseLong(value, "checkpoint-every");
            fatal_if(every < 0 || every > 100000000,
                     "--checkpoint-every must be in [0, 1e8]");
            config.checkpointEvery = static_cast<int>(every);
        } else if (flagValue(arg, "trace-cache-cap", value)) {
            const long cap = parseLong(value, "trace-cache-cap");
            fatal_if(cap < 0, "--trace-cache-cap must be >= 0");
            config.traceCacheCap = static_cast<size_t>(cap);
        } else if (arg == "--eval-population") {
            config.seedMode = SeedMode::Evaluation;
        } else if (flagValue(arg, "population", value)) {
            population_ref = value;
        } else if (flagValue(arg, "corpus", value)) {
            corpus_dir = value;
        } else if (flagValue(arg, "schedulers", value)) {
            config.schedulers = parseSchedulerList(value);
        } else if (flagValue(arg, "apps", value)) {
            config.apps = parseAppList(value);
        } else if (flagValue(arg, "devices", value)) {
            config.devices = parseDeviceList(value);
        } else if (flagValue(arg, "users", value)) {
            const long users = parseLong(value, "users");
            fatal_if(users < 1 || users > 100000000,
                     "--users must be in [1, 1e8]");
            config.users = static_cast<int>(users);
        } else if (flagValue(arg, "threads", value)) {
            const long threads = parseLong(value, "threads");
            fatal_if(threads < 1 || threads > 4096,
                     "--threads must be in [1, 4096]");
            config.threads = static_cast<int>(threads);
        } else if (flagValue(arg, "seed", value)) {
            config.baseSeed = parseSeed(value);
        } else if (flagValue(arg, "out", value)) {
            out_path = value;
        } else if (flagValue(arg, "csv", value)) {
            csv_path = value;
        } else {
            std::cerr << "unknown option '" << arg << "'\n\n";
            usage();
            return 1;
        }
    }
    fatal_if(config.users < 1 || config.users > 100000000,
             "--users must be in [1, 1e8]");
    fatal_if(config.threads < 1 || config.threads > 4096,
             "--threads must be in [1, 4096]");
    obs.applyLogging(true);

    fatal_if(config.resume && results_dir.empty(),
             "--resume requires --results-dir");

    // Mixture population: the spec lives here so the config (and the
    // runner it moves into) can borrow it for the whole run.
    std::optional<PopulationSpec> population;
    if (!population_ref.empty()) {
        const int rc =
            applyPopulationFlag(population_ref, population, config);
        if (rc != 0)
            return rc;
    }

    // Corpus replay: same axes and seeds, traces read from disk.
    std::optional<CorpusStore> corpus;
    if (!corpus_dir.empty()) {
        std::string error;
        corpus = CorpusStore::open(corpus_dir, &error);
        fatal_if(!corpus, "cannot open corpus: %s", error.c_str());
        config.corpus = &*corpus;
    }

    // Result store: created (or re-opened for resume) with the sweep's
    // identity — a directory never silently mixes two sweeps.
    std::optional<ResultStore> store;
    if (!results_dir.empty()) {
        std::string error;
        store = ResultStore::create(results_dir,
                                    SweepSpec::fromConfig(config),
                                    &error);
        fatal_if(!store, "cannot open results dir: %s", error.c_str());
        config.resultStore = &*store;
    }

    // Observability: armed only when an artifact was requested, so the
    // default run pays nothing but null-pointer branches.
    std::optional<TraceEventSink> trace_sink = obs.makeTraceSink();
    TelemetryRegistry telemetry;
    telemetry.setEnabled(obs.wantsTelemetry());
    if (obs.wantsTelemetry())
        config.telemetry = &telemetry;
    if (trace_sink)
        config.traceSink = &*trace_sink;
    config.progress = obs.progress;

    FleetRunner runner(std::move(config));
    const FleetConfig &cfg = runner.config();
    if (!quiet) {
        std::cout << "fleet: " << cfg.apps.size() << " apps x "
                  << cfg.schedulers.size() << " schedulers x "
                  << cfg.devices.size() << " devices x " << cfg.users
                  << " users = " << runner.jobs().size()
                  << " sessions on " << cfg.threads << " threads\n";
        if (cfg.shardCount > 1) {
            std::cout << "shard " << cfg.shardIndex << "/"
                      << cfg.shardCount << "\n";
        }
        const bool needs_pes = [&] {
            for (const SchedulerKind k : cfg.schedulers)
                if (k == SchedulerKind::Pes)
                    return true;
            return false;
        }();
        if (needs_pes)
            std::cout << "training event model(s)...\n";
        std::cout.flush();
    }

    FleetOutcome outcome = runner.run();
    const FleetReport report = makeFleetReport(cfg, outcome.metrics);

    // Human summary: one row per cell.
    Table table({"device", "app", "scheduler", "sessions", "viol%",
                 "energy(mJ)", "waste(mJ)", "lat(ms)", "p95(ms)",
                 "pred%"});
    for (const CellSummary &c : report.cells) {
        table.beginRow()
            .cell(c.device)
            .cell(c.app)
            .cell(c.scheduler)
            .cell(static_cast<long>(c.sessions))
            .cell(c.violationRate * 100.0, 2)
            .cell(c.meanEnergyMj, 1)
            .cell(c.meanWasteEnergyMj, 1)
            .cell(c.meanLatencyMs, 2)
            .cell(c.p95SessionLatencyMs, 2)
            .cell(c.predictionAccuracy * 100.0, 1);
    }
    table.print(std::cout);

    writeReports(report, out_path, csv_path);
    if (obs.wantsTelemetry() && !obs.telemetryOut.empty())
        writeTelemetryFile(makeRunTelemetry(cfg, outcome),
                           obs.telemetryOut);
    if (trace_sink && !obs.traceOut.empty())
        writeTraceFile(*trace_sink, obs.traceOut);

    if (!quiet && outcome.tracesFromCorpus > 0) {
        std::cout << "[corpus: " << outcome.tracesFromCorpus
                  << " traces replayed from disk]\n";
    }
    if (!quiet && cfg.resultStore) {
        std::cout << "[results: " << outcome.persistedRecords
                  << " sessions persisted in " << outcome.checkpointFlushes
                  << " checkpoint(s); store holds "
                  << cfg.resultStore->recordCount() << " records]\n";
        if (outcome.plan.resumeSkipped > 0) {
            std::cout << "[resume: skipped " << outcome.plan.resumeSkipped
                      << " already-completed sessions]\n";
        }
    }
    const double secs = outcome.wallMs / 1000.0;
    std::cout << outcome.jobCount << " sessions, "
              << outcome.metrics.events() << " events in "
              << formatDouble(secs, 2) << " s ("
              << formatDouble(secs > 0 ? outcome.jobCount / secs : 0.0, 1)
              << " sessions/s, " << cfg.threads << " threads)\n";
    if (!outcome.diagnostics.empty()) {
        for (const std::string &d : outcome.diagnostics)
            std::cerr << "FAIL " << d << "\n";
        std::cerr << outcome.diagnostics.size()
                  << " run-level problem(s); reports cover completed "
                     "sessions only\n";
        return 1;
    }
    return 0;
}
