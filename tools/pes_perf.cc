/**
 * @file
 * pes_perf: the perf-history ledger CLI — record, gate, chart.
 *
 *   # Measure (replicates!), summarize, remember:
 *   pes_fleet ... --telemetry-out=r1.json   # x N replicates
 *   pes_perf record --history=PERF.jsonl --label=sweep \
 *            --telemetry=r1.json,r2.json,r3.json --report=fleet.json
 *
 *   # Gate HEAD against the committed baseline (CI):
 *   pes_perf record --history=head.jsonl ...      # fresh sample
 *   pes_perf gate --history=PERF.jsonl --sample=head.jsonl
 *
 *   # Chart speed and quality trajectories:
 *   pes_perf report --history=PERF.jsonl --csv=trajectory.csv
 *
 * The ledger is append-only JSONL (telemetry/perf_history.hh); the gate
 * classifies every metric with the diff vocabulary under noise-
 * calibrated bands (sigmas x replicate CV, or a `pes_fleet diff
 * --calibrate` tolerance file) and exits 0 within noise / 2 regressed /
 * 3 missing history / 4 corrupt history or fingerprint-config mismatch.
 * Regressions are named on stderr ("REGRESSED t4.sessions_per_sec ...")
 * so a failing CI log says what slowed down.
 */

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "results/report_diff.hh"
#include "results/tolerance.hh"
#include "telemetry/perf_history.hh"
#include "telemetry/run_telemetry.hh"
#include "util/logging.hh"
#include "util/stats.hh"
#include "util/strings.hh"

using namespace pes;

namespace {

void
usage()
{
    std::cout <<
        "pes_perf - perf-history ledger: record, gate and chart "
        "simulator speed\n\n"
        "Verbs:\n"
        "  pes_perf record --history=FILE --telemetry=F1,F2,...\n"
        "                  [--label=NAME] [--rev=REV] [--machine=FP]\n"
        "                  [--report=FILE] [--quiet]\n"
        "      Append one PerfSample: the RunTelemetry JSON summaries "
        "are replicates,\n"
        "      grouped by their thread count into per-metric replicate "
        "vectors\n"
        "      (parallel efficiency is derived when a t1 point exists); "
        "--report folds\n"
        "      the fleet report's per-scheduler headline metrics "
        "(violation rate,\n"
        "      energy, p95 latency, accuracy) in as the quality series.\n"
        "      --rev defaults to $PES_GIT_REV, else \"unknown\"; "
        "--machine defaults to\n"
        "      the host fingerprint.\n"
        "      exit: 0 appended, 3 missing inputs, 4 unparseable "
        "inputs\n"
        "  pes_perf compare --history=FILE [--sample=FILE] "
        "[--label=NAME]\n"
        "                  [--sigmas=K] [--min-rel=R] [--metric=LIST]\n"
        "                  [--tolerance-file=FILE] [--quiet]\n"
        "      Classify candidate vs baseline without enforcing: the "
        "candidate is the\n"
        "      latest sample of --sample (or of --history itself), the "
        "baseline the\n"
        "      latest earlier --history sample. Always exits 0 unless "
        "inputs are\n"
        "      missing (3) or corrupt/incomparable (4).\n"
        "  pes_perf gate [same flags as compare]\n"
        "      The enforcing form: exit 0 within noise (improvements "
        "pass with a\n"
        "      stale-baseline note), 2 any gated metric regressed, 3 "
        "missing history,\n"
        "      4 corrupt history or machine/config mismatch. Gated by "
        "default:\n"
        "      *_per_sec, parallel_efficiency and quality.*; "
        "attribution counters\n"
        "      (lock waits, stage times, cache traffic) are advisory "
        "unless named\n"
        "      via --metric. Band per metric: max(min-rel, sigmas x "
        "replicate CV),\n"
        "      or the calibrated --tolerance-file entry.\n"
        "  pes_perf report --history=FILE [--label=NAME] "
        "[--metric=LIST]\n"
        "                  [--csv=FILE] [--quiet]\n"
        "      Deterministic trajectory series across the ledger: CSV "
        "(one row per\n"
        "      sample x metric: mean, stddev, cv) and an ASCII chart "
        "on stdout.\n"
        "      exit: 0, 3 missing history, 4 corrupt history\n";
}

bool
flagValue(const std::string &arg, const std::string &name,
          std::string &out)
{
    const std::string prefix = "--" + name + "=";
    if (!startsWith(arg, prefix))
        return false;
    out = arg.substr(prefix.size());
    return true;
}

std::string
readFileOr(const std::string &path, bool &ok)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        ok = false;
        return std::string();
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    ok = true;
    return buf.str();
}

/** Report history load problems and return the gateable exit code. */
int
failHistory(const PerfHistory &history)
{
    for (const IntegrityProblem &p : history.problems)
        std::cerr << "FAIL " << p.message << "\n";
    return integrityExitCode(history.problems);
}

// ------------------------------------------------------------- record

/** Scheduler-mean headline metrics of a report (the quality series). */
std::vector<std::pair<std::string, double>>
reportQualityMetrics(const FleetReport &report)
{
    static const std::vector<std::string> kHeadlines = {
        "violation_rate", "mean_energy_mj", "p95_session_latency_ms",
        "prediction_accuracy"};
    const std::vector<std::string> &names = cellMetricNames();
    std::vector<std::pair<std::string, double>> quality;
    for (const std::string &scheduler : report.schedulers) {
        std::map<std::string, RunningStats> stats;
        for (const CellSummary &cell : report.cells) {
            if (cell.scheduler != scheduler)
                continue;
            const std::vector<double> values = cellMetricValues(cell);
            for (size_t m = 0; m < names.size(); ++m)
                stats[names[m]].add(values[m]);
        }
        for (const std::string &headline : kHeadlines) {
            const auto it = stats.find(headline);
            if (it != stats.end())
                quality.emplace_back(scheduler + "." + headline,
                                     it->second.mean());
        }
    }
    std::sort(quality.begin(), quality.end());
    return quality;
}

int
cmdRecord(int argc, char **argv)
{
    std::string history_path;
    std::string label = "sweep";
    std::string rev;
    std::string machine;
    std::string report_path;
    std::vector<std::string> telemetry_paths;
    bool quiet = false;

    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        std::string value;
        if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (flagValue(arg, "history", value)) {
            history_path = value;
        } else if (flagValue(arg, "label", value)) {
            label = value;
        } else if (flagValue(arg, "rev", value)) {
            rev = value;
        } else if (flagValue(arg, "machine", value)) {
            machine = value;
        } else if (flagValue(arg, "report", value)) {
            report_path = value;
        } else if (flagValue(arg, "telemetry", value)) {
            for (const std::string &raw : split(value, ',')) {
                const std::string path = trim(raw);
                if (!path.empty())
                    telemetry_paths.push_back(path);
            }
        } else {
            std::cerr << "record: unknown option '" << arg << "'\n\n";
            usage();
            return 1;
        }
    }
    fatal_if(history_path.empty(), "record: --history is required");
    fatal_if(telemetry_paths.empty(),
             "record: at least one --telemetry input is required");

    // Parse every replicate, grouped by thread count.
    std::vector<IntegrityProblem> problems;
    std::map<int, std::vector<RunTelemetry>> by_threads;
    std::string scenario;
    for (const std::string &path : telemetry_paths) {
        bool ok = false;
        const std::string text = readFileOr(path, ok);
        if (!ok) {
            IntegrityProblem p;
            p.kind = IntegrityProblem::Kind::MissingFile;
            p.message = "telemetry input not found: " + path;
            problems.push_back(std::move(p));
            continue;
        }
        auto t = parseRunTelemetry(text);
        if (!t) {
            IntegrityProblem p;
            p.kind = IntegrityProblem::Kind::Corrupt;
            p.message = "unparseable RunTelemetry (or version skew): " +
                path;
            problems.push_back(std::move(p));
            continue;
        }
        scenario = t->scenario;
        by_threads[std::max(1, t->threads)].push_back(std::move(*t));
    }
    if (!problems.empty()) {
        for (const IntegrityProblem &p : problems)
            std::cerr << "FAIL " << p.message << "\n";
        return integrityExitCode(problems);
    }

    PerfSample sample;
    sample.label = label;
    if (!rev.empty()) {
        sample.rev = rev;
    } else if (const char *env = std::getenv("PES_GIT_REV")) {
        sample.rev = env;
    }
    sample.machine = machine.empty() ? machineFingerprint() : machine;

    const std::vector<std::pair<std::string, double>> schema =
        perfPointMetrics(by_threads.begin()->second.front());
    for (const auto &group : by_threads) {
        PerfPoint point;
        point.threads = group.first;
        std::map<std::string, std::vector<double>> series;
        for (const RunTelemetry &t : group.second) {
            sample.sessions = std::max(sample.sessions, t.sessions);
            sample.events = std::max(sample.events, t.events);
            for (const auto &metric : perfPointMetrics(t))
                series[metric.first].push_back(metric.second);
        }
        for (const auto &metric : schema) {
            const auto it = series.find(metric.first);
            if (it != series.end())
                point.set(metric.first, it->second);
        }
        sample.points.push_back(std::move(point));
    }

    // Parallel efficiency: rate_tN / (N x mean t1 rate), one value per
    // replicate so it gets the same CV-based noise band as raw rates.
    derivePerfParallelEfficiency(sample);

    if (!report_path.empty()) {
        const DiffInput input = loadDiffInput(report_path);
        if (!input.report) {
            for (const IntegrityProblem &p : input.problems)
                std::cerr << "FAIL " << p.message << "\n";
            return integrityExitCode(input.problems);
        }
        sample.quality = reportQualityMetrics(*input.report);
    }

    // Workload identity: label + population size + the measured thread
    // counts + scenario. Changing any of these is a different
    // experiment — the gate refuses rather than "regressing".
    std::vector<int> threads;
    for (const PerfPoint &point : sample.points)
        threads.push_back(point.threads);
    sample.config = perfConfigIdentity(label, sample.sessions,
                                       sample.events, threads, scenario);

    std::string error;
    fatal_if(!appendPerfSample(history_path, sample, &error), "%s",
             error.c_str());
    if (!quiet) {
        std::cerr << "recorded " << sample.label << " sample (rev "
                  << sample.rev << ", " << sample.replicates()
                  << " replicate(s), " << sample.points.size()
                  << " thread point(s)) -> " << history_path << "\n";
    }
    return 0;
}

// ----------------------------------------------------- compare / gate

int
cmdCompare(int argc, char **argv, bool enforce)
{
    std::string history_path;
    std::string sample_path;
    std::string label;
    std::string tolerance_file;
    PerfCompareOptions options;
    bool quiet = false;

    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        std::string value;
        if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (flagValue(arg, "history", value)) {
            history_path = value;
        } else if (flagValue(arg, "sample", value)) {
            sample_path = value;
        } else if (flagValue(arg, "label", value)) {
            label = value;
        } else if (flagValue(arg, "sigmas", value)) {
            fatal_if(!parseDouble(value, options.sigmas) ||
                         options.sigmas <= 0.0,
                     "bad value '%s' for --sigmas", value.c_str());
        } else if (flagValue(arg, "min-rel", value)) {
            fatal_if(!parseDouble(value, options.minRel) ||
                         options.minRel < 0.0,
                     "bad value '%s' for --min-rel", value.c_str());
        } else if (flagValue(arg, "metric", value)) {
            for (const std::string &raw : split(value, ',')) {
                const std::string metric = trim(raw);
                if (!metric.empty())
                    options.metrics.push_back(metric);
            }
        } else if (flagValue(arg, "tolerance-file", value)) {
            tolerance_file = value;
        } else {
            std::cerr << (enforce ? "gate" : "compare")
                      << ": unknown option '" << arg << "'\n\n";
            usage();
            return 1;
        }
    }
    fatal_if(history_path.empty(), "%s: --history is required",
             enforce ? "gate" : "compare");

    ToleranceSpec calibrated;
    if (!tolerance_file.empty()) {
        std::string error;
        auto spec = loadToleranceSpec(tolerance_file, &error);
        fatal_if(!spec, "%s", error.c_str());
        calibrated = std::move(*spec);
        options.tolerance = &calibrated;
    }

    const PerfHistory history = loadPerfHistory(history_path);
    if (!history.problems.empty())
        return failHistory(history);

    const PerfSample *base = nullptr;
    const PerfSample *test = nullptr;
    PerfHistory candidate;
    if (!sample_path.empty()) {
        candidate = loadPerfHistory(sample_path);
        if (!candidate.problems.empty())
            return failHistory(candidate);
        test = candidate.latest(label);
        base = history.latest(label);
    } else {
        // Self-gate within one ledger: latest vs the sample before it.
        test = history.latest(label);
        for (auto it = history.samples.rbegin();
             it != history.samples.rend(); ++it) {
            if (&*it == test)
                continue;
            if (label.empty() || it->label == label) {
                base = &*it;
                break;
            }
        }
    }
    if (!test || !base) {
        IntegrityProblem p;
        p.kind = IntegrityProblem::Kind::MissingFile;
        p.message = !test
            ? "no candidate sample" +
                (label.empty() ? std::string()
                               : " with label \"" + label + "\"")
            : "history has no baseline sample to compare against" +
                (label.empty() ? std::string()
                               : " (label \"" + label + "\")");
        std::cerr << "FAIL " << p.message << "\n";
        return kExitMissing;
    }

    const PerfComparison comparison =
        comparePerfSamples(*base, *test, options);
    if (!quiet) {
        std::cout << "baseline: rev " << base->rev << " ("
                  << base->replicates() << " replicates)  candidate: rev "
                  << test->rev << " (" << test->replicates()
                  << " replicates)\n";
        printPerfComparison(comparison, std::cout);
    }
    // Name every gated regression (and every incomparability) on
    // stderr even under --quiet: a failing CI gate must say WHY.
    for (const IntegrityProblem &p : comparison.problems)
        std::cerr << "FAIL " << p.message << "\n";
    for (const PerfMetricDelta &d : comparison.deltas) {
        if (d.gated && d.outcome == DiffOutcome::Regressed) {
            std::cerr << "REGRESSED " << d.name << ": " << d.base
                      << " -> " << d.test << " (delta "
                      << d.relDelta * 100.0 << "%, band "
                      << d.tolerance * 100.0 << "%)\n";
        }
    }
    const int exit_code = perfGateExitCode(comparison);
    if (!enforce)
        return exit_code == kExitDrift ? 0 : exit_code;
    return exit_code;
}

// ------------------------------------------------------------- report

int
cmdReport(int argc, char **argv)
{
    std::string history_path;
    std::string label;
    std::string csv_path;
    std::vector<std::string> selected;
    bool quiet = false;

    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        std::string value;
        if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (flagValue(arg, "history", value)) {
            history_path = value;
        } else if (flagValue(arg, "label", value)) {
            label = value;
        } else if (flagValue(arg, "csv", value)) {
            csv_path = value;
        } else if (flagValue(arg, "metric", value)) {
            for (const std::string &raw : split(value, ',')) {
                const std::string metric = trim(raw);
                if (!metric.empty())
                    selected.push_back(metric);
            }
        } else {
            std::cerr << "report: unknown option '" << arg << "'\n\n";
            usage();
            return 1;
        }
    }
    fatal_if(history_path.empty(), "report: --history is required");

    const PerfHistory history = loadPerfHistory(history_path);
    if (!history.problems.empty())
        return failHistory(history);

    std::vector<const PerfSample *> samples;
    for (const PerfSample &sample : history.samples)
        if (label.empty() || sample.label == label)
            samples.push_back(&sample);
    if (samples.empty()) {
        std::cerr << "FAIL history has no samples"
                  << (label.empty() ? std::string()
                                    : " with label \"" + label + "\"")
                  << "\n";
        return kExitMissing;
    }

    // Series selection: --metric list, else every default-gated metric
    // seen anywhere in the ledger, in first-seen flatten order.
    std::vector<std::string> names;
    if (!selected.empty()) {
        names = selected;
    } else {
        for (const PerfSample *sample : samples) {
            for (const auto &entry : flattenPerfSample(*sample)) {
                if (perfMetricGatedByDefault(entry.first) &&
                    std::find(names.begin(), names.end(), entry.first) ==
                        names.end())
                    names.push_back(entry.first);
            }
        }
    }

    // The trajectory table: per metric x sample, replicate mean/spread.
    std::ostringstream csv;
    csv << "index,rev,machine,replicates,metric,mean,stddev,cv\n";
    for (const std::string &name : names) {
        for (size_t i = 0; i < samples.size(); ++i) {
            const PerfSample &sample = *samples[i];
            const auto flat = flattenPerfSample(sample);
            const std::vector<double> *values = nullptr;
            for (const auto &entry : flat)
                if (entry.first == name)
                    values = &entry.second;
            if (!values)
                continue;
            const PerfNoise noise = perfNoise(*values);
            csv << i << "," << sample.rev << ","
                << sample.machine << "," << values->size()
                << "," << name << "," << csvNum(noise.mean)
                << "," << csvNum(noise.stddev) << ","
                << csvNum(noise.cv) << "\n";
        }
    }
    if (!csv_path.empty()) {
        std::ofstream os(csv_path, std::ios::binary);
        fatal_if(!os, "cannot open '%s'", csv_path.c_str());
        os << csv.str();
    }

    if (!quiet) {
        // ASCII trajectory: one bar row per sample, scaled to the
        // series max so trends read at a glance.
        constexpr int kBarWidth = 40;
        for (const std::string &name : names) {
            std::vector<std::pair<const PerfSample *, PerfNoise>> series;
            double peak = 0.0;
            for (const PerfSample *sample : samples) {
                const auto flat = flattenPerfSample(*sample);
                for (const auto &entry : flat) {
                    if (entry.first != name)
                        continue;
                    const PerfNoise noise = perfNoise(entry.second);
                    peak = std::max(peak, std::fabs(noise.mean));
                    series.emplace_back(sample, noise);
                }
            }
            if (series.empty())
                continue;
            std::cout << name << "\n";
            for (size_t i = 0; i < series.size(); ++i) {
                const int width = peak > 0.0
                    ? static_cast<int>(kBarWidth *
                                       std::fabs(series[i].second.mean) /
                                       peak + 0.5)
                    : 0;
                std::cout << "  [" << i << "] "
                          << std::string(static_cast<size_t>(width), '#')
                          << " " << csvNum(series[i].second.mean)
                          << " (cv " << csvNum(series[i].second.cv)
                          << ", rev " << series[i].first->rev << ")\n";
            }
        }
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage();
        return 1;
    }
    const std::string verb = argv[1];
    if (verb == "--help" || verb == "-h" || verb == "help") {
        usage();
        return 0;
    }
    if (verb == "record")
        return cmdRecord(argc, argv);
    if (verb == "compare")
        return cmdCompare(argc, argv, /*enforce=*/false);
    if (verb == "gate")
        return cmdCompare(argc, argv, /*enforce=*/true);
    if (verb == "report")
        return cmdReport(argc, argv);
    std::cerr << "pes_perf: unknown verb '" << verb << "'\n\n";
    usage();
    return 1;
}
