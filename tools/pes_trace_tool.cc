/**
 * @file
 * pes_trace_tool — command-line record/replay utility.
 *
 * Subcommands:
 *   apps                       list the 18 benchmark applications
 *   gen  <app> <seed> <file>   generate a session and save it
 *   info <file>                summarize a saved trace
 *   replay <file> <scheduler>  replay a trace under one scheduler
 *   compare <file>             replay under all five schedulers
 *
 * Schedulers: interactive | ondemand | ebs | pes | oracle.
 */

#include <cstring>
#include <iostream>

#include "core/experiment.hh"
#include "util/logging.hh"
#include "util/strings.hh"
#include "util/table.hh"

using namespace pes;

namespace {

int
usage()
{
    std::cerr <<
        "usage:\n"
        "  pes_trace_tool apps\n"
        "  pes_trace_tool gen <app> <seed> <file>\n"
        "  pes_trace_tool info <file>\n"
        "  pes_trace_tool replay <file> <scheduler>\n"
        "  pes_trace_tool compare <file>\n"
        "schedulers: interactive | ondemand | ebs | pes | oracle\n";
    return 2;
}

std::optional<SchedulerKind>
parseScheduler(const std::string &name)
{
    if (name == "interactive")
        return SchedulerKind::Interactive;
    if (name == "ondemand")
        return SchedulerKind::Ondemand;
    if (name == "ebs")
        return SchedulerKind::Ebs;
    if (name == "pes")
        return SchedulerKind::Pes;
    if (name == "oracle")
        return SchedulerKind::Oracle;
    return std::nullopt;
}

InteractionTrace
loadOrDie(const std::string &path)
{
    auto trace = InteractionTrace::loadFromFile(path);
    fatal_if(!trace, "cannot read trace file '%s'", path.c_str());
    return *trace;
}

int
cmdApps()
{
    Table table({"app", "set", "pages", "temp", "load_scale"});
    for (const AppProfile &p : appRegistry()) {
        table.beginRow()
            .cell(p.name)
            .cell(std::string(p.seen ? "seen" : "unseen"))
            .cell(static_cast<long>(p.numPages))
            .cell(p.behaviorTemp, 2)
            .cell(p.loadWorkScale, 2);
    }
    table.print(std::cout);
    return 0;
}

int
cmdGen(const std::string &app, uint64_t seed, const std::string &path)
{
    Experiment exp;
    const InteractionTrace trace =
        exp.generator().generate(appByName(app), seed);
    fatal_if(!trace.saveToFile(path), "cannot write '%s'", path.c_str());
    std::cout << "wrote " << trace.size() << " events ("
              << formatDouble(trace.duration() / 1000.0, 1) << " s) to "
              << path << "\n";
    return 0;
}

int
cmdInfo(const std::string &path)
{
    const InteractionTrace trace = loadOrDie(path);
    std::cout << "app:      " << trace.appName << "\n"
              << "user:     " << trace.userSeed << "\n"
              << "events:   " << trace.size() << "\n"
              << "duration: "
              << formatDouble(trace.duration() / 1000.0, 1) << " s\n";
    int counts[kNumInteractions] = {};
    double gaps = 0.0;
    for (size_t i = 0; i < trace.events.size(); ++i) {
        ++counts[static_cast<int>(interactionOf(trace.events[i].type))];
        if (i)
            gaps += trace.events[i].arrival - trace.events[i - 1].arrival;
    }
    std::cout << "mix:      " << counts[0] << " loads, " << counts[1]
              << " taps, " << counts[2] << " moves\n";
    if (trace.size() > 1) {
        std::cout << "mean gap: "
                  << formatDouble(gaps / (trace.size() - 1) / 1000.0, 2)
                  << " s\n";
    }
    return 0;
}

void
printResult(const SimResult &r)
{
    std::cout << r.schedulerName << ": energy "
              << formatDouble(r.totalEnergy, 1) << " mJ, violations "
              << formatPercent(r.violationRate());
    if (r.predictionsMade > 0) {
        std::cout << ", prediction accuracy "
                  << formatPercent(r.predictionAccuracy());
    }
    std::cout << "\n";
}

int
cmdReplay(const std::string &path, const std::string &sched)
{
    const auto kind = parseScheduler(sched);
    if (!kind)
        return usage();
    const InteractionTrace trace = loadOrDie(path);
    Experiment exp;
    if (*kind == SchedulerKind::Pes)
        exp.trainedModel();
    const AppProfile &profile = appByName(trace.appName);
    const auto driver = exp.makeScheduler(*kind);
    printResult(exp.runTrace(profile, trace, *driver));
    return 0;
}

int
cmdCompare(const std::string &path)
{
    const InteractionTrace trace = loadOrDie(path);
    Experiment exp;
    exp.trainedModel();
    const AppProfile &profile = appByName(trace.appName);
    for (SchedulerKind kind :
         {SchedulerKind::Interactive, SchedulerKind::Ondemand,
          SchedulerKind::Ebs, SchedulerKind::Pes,
          SchedulerKind::Oracle}) {
        const auto driver = exp.makeScheduler(kind);
        printResult(exp.runTrace(profile, trace, *driver));
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);
    if (argc < 2)
        return usage();
    const std::string cmd = argv[1];
    if (cmd == "apps")
        return cmdApps();
    if (cmd == "gen" && argc == 5) {
        uint64_t seed;
        fatal_if(!parseUint64(argv[3], seed),
                 "bad seed '%s' (expected an unsigned integer)", argv[3]);
        return cmdGen(argv[2], seed, argv[4]);
    }
    if (cmd == "info" && argc == 3)
        return cmdInfo(argv[2]);
    if (cmd == "replay" && argc == 4)
        return cmdReplay(argv[2], argv[3]);
    if (cmd == "compare" && argc == 3)
        return cmdCompare(argv[2]);
    return usage();
}
