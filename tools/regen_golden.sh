#!/bin/sh
# Regenerate (or reproduce) the golden mini-sweep baseline.
#
# The golden baseline is the committed report of a small, fully
# deterministic sweep; tests/test_diff.cc and the CI regression gate
# compare freshly produced reports against it with `pes_fleet diff
# --exact`. This script is the single CLI definition of that sweep —
# tests/test_diff.cc (GoldenBaseline.*) replicates the same parameters
# in-process, so keep the two in sync.
#
# Usage: tools/regen_golden.sh [OUT_JSON [OUT_CSV [OUT_TRACE]]]
#   PES_FLEET=path/to/pes_fleet   binary to use [build/pes_fleet]
#
# Run with no arguments (e.g. `cmake --build build --target
# regen-golden`) to overwrite the committed baseline after an
# INTENTIONAL result change; commit the new files with the change that
# caused them.
set -eu

out_json="${1:-tests/data/golden/mini_sweep.json}"
out_csv="${2:-tests/data/golden/mini_sweep.csv}"
out_trace="${3:-tests/data/golden/mini_sweep.trace.json}"
fleet="${PES_FLEET:-build/pes_fleet}"

"$fleet" \
    --schedulers=ebs,interactive \
    --apps=cnn,social_feed \
    --users=3 \
    --threads=4 \
    --seed=0xf1ee7 \
    --out="$out_json" \
    --csv="$out_csv" \
    --quiet >/dev/null

# The logical-clock trace golden: same mini sweep at --threads=1 (one
# worker drains the queue in canonical order, so every virtual tick is
# fully determined). tests/test_telemetry.cc
# (TraceSink.LogicalClockMatchesCommittedGolden) replicates this
# in-process — keep the two in sync.
"$fleet" run \
    --schedulers=ebs,interactive \
    --apps=cnn,social_feed \
    --users=3 \
    --threads=1 \
    --seed=0xf1ee7 \
    --logical-clock \
    --trace-out="$out_trace" \
    --quiet >/dev/null
