#!/bin/sh
# Regenerate (or reproduce) the golden mini-sweep baseline.
#
# The golden baseline is the committed report of a small, fully
# deterministic sweep; tests/test_diff.cc and the CI regression gate
# compare freshly produced reports against it with `pes_fleet diff
# --exact`. This script is the single CLI definition of that sweep —
# tests/test_diff.cc (GoldenBaseline.*) replicates the same parameters
# in-process, so keep the two in sync.
#
# Usage: tools/regen_golden.sh [OUT_JSON [OUT_CSV]]
#   PES_FLEET=path/to/pes_fleet   binary to use [build/pes_fleet]
#
# Run with no arguments (e.g. `cmake --build build --target
# regen-golden`) to overwrite the committed baseline after an
# INTENTIONAL result change; commit the new files with the change that
# caused them.
set -eu

out_json="${1:-tests/data/golden/mini_sweep.json}"
out_csv="${2:-tests/data/golden/mini_sweep.csv}"
fleet="${PES_FLEET:-build/pes_fleet}"

"$fleet" \
    --schedulers=ebs,interactive \
    --apps=cnn,social_feed \
    --users=3 \
    --threads=4 \
    --seed=0xf1ee7 \
    --out="$out_json" \
    --csv="$out_csv" \
    --quiet >/dev/null
